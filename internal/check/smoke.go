package check

import (
	"fmt"
)

// SmokeConfig sizes one deterministic smoke run of the whole harness:
// a clean equivalence experiment, a budget of random concurrent
// histories, and a spread of crash-point equivalence schedules.
type SmokeConfig struct {
	// Seed is the base seed; history i uses Seed+i, so a failing
	// history's repro command is exact, not positional.
	Seed int64
	// Histories is the number of random concurrent histories (default
	// 100). Half of them run against a live reorganization.
	Histories int
	// CrashSchedules is the number of crash-point equivalence runs,
	// spread evenly over the enumerated fault-point hits (default 10).
	CrashSchedules int
	// Shrink, when a history fails, re-runs smaller variants to find a
	// tighter repro (bounded work).
	Shrink bool
	// Dir, when non-empty, runs the equivalence and crash-schedule legs
	// on the file backend, each run in a fresh directory under Dir.
	// (Histories stay in-memory: they probe concurrency, not media.)
	Dir string
	// Daemon runs the equivalence and crash-schedule legs with the
	// autonomous-daemon arm enabled: the crash schedules then index the
	// daemon run's fault-point hits, including daemon.tick and
	// daemon.unit.start.
	Daemon bool
	// Logf receives progress output (nil = silent).
	Logf func(format string, args ...any)

	// Overrides for single-repro invocations: when HistoryClients or
	// HistoryOps is set, derived history shapes are clamped to them.
	HistoryClients int
	HistoryOps     int
}

func (c SmokeConfig) withDefaults() SmokeConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Histories < 0 {
		c.Histories = 0
	} else if c.Histories == 0 {
		c.Histories = 100
	}
	if c.CrashSchedules < 0 {
		c.CrashSchedules = 0
	} else if c.CrashSchedules == 0 {
		c.CrashSchedules = 10
	}
	return c
}

// SmokeResult summarises a completed smoke run.
type SmokeResult struct {
	Histories   int // histories run and verified
	CrashRuns   int // crash-point equivalence runs verified
	Hits        int // enumerated fault-point hits of the equivalence program
	SideApplied int64
}

// splitmix64 turns a seed into independent derived draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HistoryConfigFor derives a history shape purely from its seed: the
// same seed always yields the same clients/ops/keyspace/reorg choice,
// so "-seed N -histories 1" replays exactly the failing history.
func HistoryConfigFor(seed int64) RunConfig {
	h := splitmix64(uint64(seed))
	return RunConfig{
		Seed:         seed,
		Clients:      2 + int(h%4),        // 2..5
		OpsPerClient: 30 + int(h>>8%4)*15, // 30..75
		KeySpace:     []int{48, 64, 96}[int(h>>16%3)],
		Reorganize:   h>>24%2 == 0,
	}
}

// runOneHistory executes and verifies a single derived history.
func runOneHistory(hcfg RunConfig) error {
	h, db, err := RunHistory(hcfg)
	if err != nil {
		return err
	}
	if err := Linearize(h, hcfg); err != nil {
		return err
	}
	if rep := Tree(db); !rep.OK() {
		return rep.Err()
	}
	return nil
}

// shrinkHistory tries smaller variants of a failing history and
// returns the smallest configuration that still fails (bounded work;
// concurrency failures need not reproduce, in which case the original
// stands).
func shrinkHistory(hcfg RunConfig) RunConfig {
	best := hcfg
	for round := 0; round < 8; round++ {
		cand := best
		switch round % 2 {
		case 0:
			if cand.OpsPerClient <= 5 {
				continue
			}
			cand.OpsPerClient /= 2
		case 1:
			if cand.Clients <= 1 {
				continue
			}
			cand.Clients--
		}
		if runOneHistory(cand) != nil {
			best = cand
		}
	}
	return best
}

// Smoke runs the standing harness at the given budget. Any failure's
// error includes a single-line repro command.
func Smoke(cfg SmokeConfig) (*SmokeResult, error) {
	cfg = cfg.withDefaults()
	res := &SmokeResult{}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	daemonFlag := ""
	if cfg.Daemon {
		daemonFlag = " -daemon"
	}

	// --- clean equivalence + structure oracle on every pass boundary
	eq, err := Equiv(EquivConfig{Seed: cfg.Seed, Dir: cfg.Dir, Daemon: cfg.Daemon})
	if err != nil {
		return res, fmt.Errorf("%w\nrepro: reorg-bench -check -seed %d -histories 0 -crashes 0%s",
			err, cfg.Seed, daemonFlag)
	}
	res.SideApplied = eq.SideApplied
	if cfg.Daemon {
		logf("check: clean equivalence ok (%d records, %d side-file applies, %d daemon units)",
			eq.Records, eq.SideApplied, eq.DaemonUnits)
	} else {
		logf("check: clean equivalence ok (%d records, %d side-file applies)",
			eq.Records, eq.SideApplied)
	}

	// --- random concurrent histories
	for i := 0; i < cfg.Histories; i++ {
		seed := cfg.Seed + int64(i)
		hcfg := HistoryConfigFor(seed)
		if cfg.HistoryClients > 0 {
			hcfg.Clients = cfg.HistoryClients
		}
		if cfg.HistoryOps > 0 {
			hcfg.OpsPerClient = cfg.HistoryOps
		}
		if err := runOneHistory(hcfg); err != nil {
			repro := fmt.Sprintf("reorg-bench -check -seed %d -histories 1 -crashes 0", seed)
			if cfg.Shrink {
				if small := shrinkHistory(hcfg); small != hcfg {
					repro = fmt.Sprintf(
						"reorg-bench -check -seed %d -histories 1 -crashes 0 -clients %d -ops %d",
						seed, small.Clients, small.OpsPerClient)
				}
			}
			return res, fmt.Errorf("history seed %d (clients=%d ops=%d reorg=%v): %w\nrepro: %s",
				seed, hcfg.Clients, hcfg.OpsPerClient, hcfg.Reorganize, err, repro)
		}
		res.Histories++
		if (i+1)%20 == 0 {
			logf("check: %d/%d histories linearizable", i+1, cfg.Histories)
		}
	}

	// --- crash-point equivalence schedules
	if cfg.CrashSchedules > 0 {
		hits, err := EquivHits(EquivConfig{Seed: cfg.Seed, Dir: cfg.Dir, Daemon: cfg.Daemon})
		if err != nil {
			return res, fmt.Errorf("%w\nrepro: reorg-bench -check -seed %d -histories 0 -crashes 0%s",
				err, cfg.Seed, daemonFlag)
		}
		res.Hits = hits
		denom := cfg.CrashSchedules - 1
		if denom < 1 {
			denom = 1
		}
		for j := 0; j < cfg.CrashSchedules; j++ {
			hit := 1 + j*(hits-1)/denom
			if _, err := Equiv(EquivConfig{Seed: cfg.Seed, CrashHit: hit, Dir: cfg.Dir, Daemon: cfg.Daemon}); err != nil {
				return res, fmt.Errorf("crash schedule %d/%d (hit %d of %d): %w\nrepro: reorg-bench -check -seed %d -histories 0 -crashes 0 -crashhit %d%s",
					j+1, cfg.CrashSchedules, hit, hits, err, cfg.Seed, hit, daemonFlag)
			}
			res.CrashRuns++
		}
		logf("check: %d crash schedules over %d hits equivalent", res.CrashRuns, hits)
	}
	return res, nil
}
