// Package check is the standing correctness harness: a structure
// oracle that audits every paper-level invariant of the on-disk tree,
// a linearizability checker for concurrent histories, and an
// equivalence suite that proves a reorganized tree serves the same
// contents as an unreorganized one — across crashes and forward
// recovery. Every randomized entry point is seeded and prints a
// one-line repro command on failure.
package check

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// Violation is one broken invariant found by the structure oracle.
type Violation struct {
	// Rule names the invariant (stable identifiers, e.g. "wal-rule",
	// "key-order", "chain", "mergeable", "freemap-drift").
	Rule string
	// Page is the page the violation anchors to (0 when global).
	Page storage.PageID
	// Msg is the human-readable detail.
	Msg string
}

func (v Violation) String() string {
	if v.Page != 0 {
		return fmt.Sprintf("[%s] page %d: %s", v.Rule, v.Page, v.Msg)
	}
	return fmt.Sprintf("[%s] %s", v.Rule, v.Msg)
}

// Report collects violations so one oracle run surfaces every broken
// invariant at once instead of failing fast on the first.
type Report struct {
	Violations []Violation
}

// Add records a violation.
func (r *Report) Add(rule string, page storage.PageID, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Rule: rule, Page: page, Msg: fmt.Sprintf(format, args...),
	})
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, otherwise an error listing
// every violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s):\n%s",
		len(r.Violations), r.String())
}

func (r *Report) String() string {
	var b strings.Builder
	for i, v := range r.Violations {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("  ")
		b.WriteString(v.String())
	}
	return b.String()
}
