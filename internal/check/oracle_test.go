package check_test

import (
	"testing"

	"repro"
	"repro/internal/check"
	"repro/internal/kv"
	"repro/internal/storage"
	"repro/internal/workload"
)

func hasRule(rep *check.Report, rule string) bool {
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func openLoaded(t *testing.T, records int) *repro.DB {
	t.Helper()
	db, err := repro.Open(repro.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Load(db, records, 32, "seq", 1); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOracleCleanOnHealthyTree(t *testing.T) {
	db := openLoaded(t, 300)
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("healthy tree flagged:\n%s", rep)
	}
}

func TestOracleMergeableAudit(t *testing.T) {
	db := openLoaded(t, 400)
	if _, err := workload.Sparsify(db, 400, 0.25); err != nil {
		t.Fatal(err)
	}
	// Positive control: a freshly sparsified tree must have mergeable
	// neighbours — that is the condition Pass 1 exists to fix.
	rep := check.TreeWith(db, check.TreeOptions{MergeableFill: 0.9})
	if !hasRule(rep, "mergeable") {
		t.Fatalf("sparse tree reported no mergeable pairs:\n%s", rep)
	}

	cfg := repro.DefaultReorgConfig()
	cfg.SwapPass = false
	cfg.InternalPass = false
	if _, err := db.Reorganize(cfg); err != nil {
		t.Fatal(err)
	}
	rep = check.TreeWith(db, check.TreeOptions{MergeableFill: cfg.TargetFill})
	if err := rep.Err(); err != nil {
		t.Fatalf("after pass 1: %v", err)
	}
}

func TestOracleContiguityAfterFullReorg(t *testing.T) {
	db := openLoaded(t, 400)
	if _, err := workload.Sparsify(db, 400, 0.25); err != nil {
		t.Fatal(err)
	}
	cfg := repro.DefaultReorgConfig()
	if _, err := db.Reorganize(cfg); err != nil {
		t.Fatal(err)
	}
	rep := check.TreeWith(db, check.TreeOptions{
		MergeableFill:    cfg.TargetFill,
		ExpectContiguous: true,
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("after full reorganization: %v", err)
	}
}

func TestOracleContiguityFlagsDisorder(t *testing.T) {
	db := openLoaded(t, 400)
	// Free low page ids, then grow at the high end: splits reuse the
	// freed low ids, putting high-key leaves at low disk addresses.
	for i := 100; i < 300; i++ {
		if err := db.Delete(workload.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 400; i < 700; i++ {
		if err := db.Insert(workload.Key(i), workload.Value(i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.OutOfOrderPairs == 0 {
		t.Skip("workload produced no disorder; nothing to flag")
	}
	rep := check.TreeWith(db, check.TreeOptions{ExpectContiguous: true})
	if !hasRule(rep, "contiguity") {
		t.Fatalf("disorder (%d out-of-order pairs) not flagged:\n%s",
			st.OutOfOrderPairs, rep)
	}
	// The unconditional rules must still pass on this tree.
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("disordered-but-valid tree flagged:\n%s", rep)
	}
}

func TestOracleDetectsWALRuleViolation(t *testing.T) {
	db := openLoaded(t, 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := db.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	disk := db.Tree().Pager().Disk()
	buf := make([]byte, db.PageSize())
	victim := st.LeafIDs[0]
	if err := disk.Read(victim, buf); err != nil {
		t.Fatal(err)
	}
	storage.Page(buf).SetLSN(1 << 40)
	if err := disk.Write(victim, buf); err != nil {
		t.Fatal(err)
	}
	if rep := check.Tree(db); !hasRule(rep, "wal-rule") {
		t.Fatalf("stable LSN past durable horizon not flagged:\n%s", rep)
	}
}

// corruptLeaf fetches a leaf frame, mutates it under the latch, and
// flushes it so the corruption is what the oracle sees.
func corruptLeaf(t *testing.T, db *repro.DB, id storage.PageID, mutate func(p storage.Page)) {
	t.Helper()
	pager := db.Tree().Pager()
	f, err := pager.Fix(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	mutate(f.Data())
	f.Unlock()
	pager.MarkDirty(f, 0)
	pager.Unfix(f)
	if err := pager.FlushPage(id); err != nil {
		t.Fatal(err)
	}
}

func TestOracleDetectsBrokenSiblingChain(t *testing.T) {
	db := openLoaded(t, 200)
	st, err := db.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.LeafIDs) < 3 {
		t.Fatal("want at least 3 leaves")
	}
	corruptLeaf(t, db, st.LeafIDs[1], func(p storage.Page) {
		p.SetNext(st.LeafIDs[0]) // stale pointer: skips back instead of forward
	})
	if rep := check.Tree(db); !hasRule(rep, "chain") {
		t.Fatalf("stale sibling link not flagged:\n%s", rep)
	}
}

func TestOracleDetectsKeyOrderCorruption(t *testing.T) {
	db := openLoaded(t, 200)
	st, err := db.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	corruptLeaf(t, db, st.LeafIDs[0], func(p storage.Page) {
		k := kv.SlotKey(p, 0)
		for i := range k {
			k[i] = 0xff // first key now sorts above every later key
		}
	})
	rep := check.Tree(db)
	if !hasRule(rep, "key-order") && !hasRule(rep, "bounds") {
		t.Fatalf("in-page key disorder not flagged:\n%s", rep)
	}
}

func TestOracleDetectsFreeMapDrift(t *testing.T) {
	db := openLoaded(t, 200)
	st, err := db.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	fm := db.Tree().Pager().FreeMap()
	fm.Free(st.LeafIDs[0])
	if rep := check.Tree(db); !hasRule(rep, "freemap-drift") {
		t.Fatalf("free-map drift not flagged:\n%s", rep)
	}
	fm.MarkAllocated(st.LeafIDs[0])
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("repaired map still flagged:\n%s", rep)
	}
}

func TestOracleDetectsLeakedPage(t *testing.T) {
	db := openLoaded(t, 200)
	pager := db.Tree().Pager()
	f, err := pager.Allocate(storage.PageLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pager.MarkDirty(f, 0)
	pager.Unfix(f)
	if rep := check.Tree(db); !hasRule(rep, "freemap-leak") {
		t.Fatalf("unreachable allocated page not flagged:\n%s", rep)
	}
}

func TestOracleDetectsLevelCorruption(t *testing.T) {
	db := openLoaded(t, 200)
	rootID, _ := db.Tree().Root()
	corruptLeaf(t, db, rootID, func(p storage.Page) {
		p.SetAux(p.Aux() + 1)
	})
	rep := check.Tree(db)
	if !hasRule(rep, "level") {
		t.Fatalf("level corruption not flagged:\n%s", rep)
	}
}
