package check

import "testing"

// TestEquivRegressionPass3CleanupLeaks pins crash schedules that once
// leaked pages during pass-3 cleanup, caught by the oracle's
// freemap-leak check. Two distinct bugs, both fixed together:
//
//   - The side-file chain was destroyed AFTER the reorg bit was
//     cleared in the anchor, so a crash mid-destroy left allocated
//     side-file pages with no breadcrumb for recovery to find them
//     (seeds 101 and 999).
//
//   - Old internal pages were deallocated parents-first, so a crash
//     mid-discard freed the old root and orphaned its still-allocated
//     descendants from recovery's re-walk (seed 20260805, which leaked
//     five internal pages at once).
//
// The hits land inside the "pass3" step, in the cleanup tail after the
// root switch. Repro for any of these:
//
//	reorg-bench -check -seed <seed> -crashhit <hit>
func TestEquivRegressionPass3CleanupLeaks(t *testing.T) {
	cases := []struct {
		seed int64
		hit  int
		bug  string
	}{
		{101, 3083, "side-file chain leak"},
		{999, 3178, "side-file chain leak"},
		{20260805, 3104, "old-internal subtree leak"},
	}
	for _, c := range cases {
		res, err := Equiv(EquivConfig{Seed: c.seed, CrashHit: c.hit})
		if err != nil {
			t.Errorf("seed %d hit %d (%s): %v\nrepro: reorg-bench -check -seed %d -crashhit %d",
				c.seed, c.hit, c.bug, err, c.seed, c.hit)
			continue
		}
		if !res.Crashed {
			t.Errorf("seed %d hit %d (%s): schedule no longer crashes; re-pin the hit",
				c.seed, c.hit, c.bug)
		}
	}
}
