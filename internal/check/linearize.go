package check

import (
	"errors"
	"fmt"
	"sort"

	"repro"
	"repro/internal/workload"
)

// Linearize verifies that a recorded history is linearizable against a
// per-key register model. Point operations on distinct keys commute, so
// the history is partitioned by key and each key checked independently
// (P-compositionality) with the Wing & Gong search, memoized on the
// (linearized-set, register-state) configuration.
//
// Scans are validated separately and more weakly (scan.go's rules):
// they are excluded from the per-key search, because a multi-key range
// scan under record-level locking is not serializable against single-
// record writers in this system — the paper's reorganizer only promises
// record-level consistency for them.
func Linearize(h *History, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	byKey := make(map[int][]Event)
	for _, ev := range h.Events() {
		if ev.Op.Kind == workload.OpScan {
			continue
		}
		byKey[ev.Op.Key] = append(byKey[ev.Op.Key], ev)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := linearizeKey(k, byKey[k], cfg); err != nil {
			return err
		}
	}
	return checkScans(h, cfg)
}

// register states: the value identity a key can hold. stateAbsent and
// stateInitial are fixed; state i >= 0 means "the value written by
// ops[i]".
const (
	stateAbsent  = -1
	stateInitial = -2
)

// linearizeKey searches for a legal total order of one key's
// operations. n is small in practice (ops spread over the key space),
// so the exponential worst case never bites; the memo bounds repeated
// configurations.
func linearizeKey(key int, events []Event, cfg RunConfig) error {
	sort.Slice(events, func(i, j int) bool { return events[i].Invoke < events[j].Invoke })
	n := len(events)
	if n == 0 {
		return nil
	}
	if n > 63 {
		// The bitmask memo covers 63 ops per key; histories that size
		// should shrink the key space instead.
		return fmt.Errorf("check: %d ops on key %d exceeds the checker's per-key limit", n, key)
	}

	// initial state: even keys are preloaded with generation 0.
	initial := stateAbsent
	if key%2 == 0 {
		initial = stateInitial
	}

	// got[i] classifies what a Get observed: a state constant, or the
	// writing op's index once we match the generation below.
	got := make([]int, n)
	genToOp := make(map[int]int, n)
	for i, ev := range events {
		if isWrite(ev.Op.Kind) {
			genToOp[ev.Op.Gen] = i
		}
	}
	for i, ev := range events {
		got[i] = stateAbsent
		if ev.Op.Kind != workload.OpGet || ev.Got == nil {
			continue
		}
		pk, gen, ok := ParseValue(ev.Got)
		if !ok || pk != key {
			return fmt.Errorf("check: get on key %d observed foreign value %q (seed repro follows)", key, ev.Got)
		}
		if gen == 0 {
			got[i] = stateInitial
			continue
		}
		w, ok := genToOp[gen]
		if !ok {
			return fmt.Errorf("check: get on key %d observed value of unknown generation %d", key, gen)
		}
		got[i] = w
	}

	type config struct {
		mask  uint64
		state int
	}
	seen := make(map[config]bool)
	full := uint64(1)<<n - 1

	// step returns (newState, legal) for linearizing op i in state s.
	step := func(i, s int) (int, bool) {
		ev := events[i]
		present := s != stateAbsent
		switch ev.Op.Kind {
		case workload.OpGet:
			if ev.Err != nil { // not-found
				return s, !present
			}
			return s, present && got[i] == s
		case workload.OpInsert:
			if ev.Err != nil { // exists
				return s, present
			}
			return i, !present
		case workload.OpUpdate:
			if ev.Err != nil { // not-found
				return s, !present
			}
			return i, present
		case workload.OpDelete:
			if ev.Err != nil { // not-found
				return s, !present
			}
			return stateAbsent, present
		case workload.OpPut:
			return i, true
		}
		return s, false
	}

	var dfs func(mask uint64, state int) bool
	dfs = func(mask uint64, state int) bool {
		if mask == full {
			return true
		}
		c := config{mask, state}
		if seen[c] {
			return false
		}
		seen[c] = true
		// minimal candidates: ops not yet linearized whose invocation
		// precedes every unlinearized response.
		minRet := int64(1) << 62
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && events[i].Return < minRet {
				minRet = events[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 || events[i].Invoke > minRet {
				continue
			}
			if ns, ok := step(i, state); ok {
				if dfs(mask|1<<i, ns) {
					return true
				}
			}
		}
		return false
	}

	if !dfs(0, initial) {
		return fmt.Errorf("check: history not linearizable on key %d:\n%s",
			key, formatKeyHistory(key, events))
	}
	return nil
}

func isWrite(k workload.OpKind) bool {
	switch k {
	case workload.OpPut, workload.OpInsert, workload.OpUpdate:
		return true
	}
	return false
}

func formatKeyHistory(key int, events []Event) string {
	out := ""
	for _, ev := range events {
		res := "ok"
		switch {
		case errors.Is(ev.Err, repro.ErrNotFound):
			res = "notfound"
		case errors.Is(ev.Err, repro.ErrExists):
			res = "exists"
		}
		if ev.Op.Kind == workload.OpGet && ev.Err == nil {
			if _, gen, ok := ParseValue(ev.Got); ok {
				res = fmt.Sprintf("gen%d", gen)
			}
		}
		out += fmt.Sprintf("  [%d,%d] client %d %v(key=%d gen=%d) -> %s\n",
			ev.Invoke, ev.Return, ev.Client, ev.Op.Kind, key, ev.Op.Gen, res)
	}
	return out
}

// checkScans validates range scans with the relaxed record-consistency
// rules: keys strictly increasing and inside the requested range, every
// observed value produced by a real write (or the initial load) on that
// key, and no undecodable values.
func checkScans(h *History, cfg RunConfig) error {
	// every (key, gen) a write op issued, plus the initial load
	written := make(map[[2]int]bool)
	for k := 0; k < cfg.KeySpace; k += 2 {
		written[[2]int{k, 0}] = true
	}
	for _, ev := range h.Events() {
		if isWrite(ev.Op.Kind) && ev.Err == nil {
			written[[2]int{ev.Op.Key, ev.Op.Gen}] = true
		}
	}
	for _, ev := range h.Events() {
		if ev.Op.Kind != workload.OpScan {
			continue
		}
		if ev.BadPairs > 0 {
			return fmt.Errorf("check: scan by client %d observed %d undecodable values",
				ev.Client, ev.BadPairs)
		}
		lo, hi := ev.Op.Key, ev.Op.Key+ev.Op.Span
		last := -1
		for _, p := range ev.Pairs {
			if p.Key < lo || p.Key > hi {
				return fmt.Errorf("check: scan [%d,%d] by client %d returned key %d outside the range",
					lo, hi, ev.Client, p.Key)
			}
			if p.Key <= last {
				return fmt.Errorf("check: scan [%d,%d] by client %d returned key %d out of order (after %d)",
					lo, hi, ev.Client, p.Key, last)
			}
			last = p.Key
			if !written[[2]int{p.Key, p.Gen}] {
				return fmt.Errorf("check: scan [%d,%d] by client %d observed key %d gen %d never written",
					lo, hi, ev.Client, p.Key, p.Gen)
			}
		}
	}
	return nil
}
