package check

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/workload"
)

// valueBase spreads write generations into disjoint value ids:
// ValueFor(key, gen) is unique per (key, gen) as long as the key space
// stays below it.
const valueBase = 1_000_000

// ValueFor derives the unique value written by generation gen on key.
// Generation 0 is the initial load image.
func ValueFor(key, gen, size int) []byte {
	return workload.Value(gen*valueBase+key, size)
}

// ParseValue inverts ValueFor: it recovers (key, gen) from an observed
// value so scan results can be traced back to the write that produced
// them.
func ParseValue(v []byte) (key, gen int, ok bool) {
	if !bytes.HasPrefix(v, []byte("val-")) {
		return 0, 0, false
	}
	rest := v[4:]
	end := bytes.IndexByte(rest, '-')
	if end < 0 {
		return 0, 0, false
	}
	id, err := strconv.Atoi(string(rest[:end]))
	if err != nil {
		return 0, 0, false
	}
	return id % valueBase, id / valueBase, true
}

// ScanPair is one record observed by a range scan.
type ScanPair struct {
	Key int
	Gen int
}

// Event is one completed operation in a concurrent history. Invoke and
// Return are drawn from one logical clock: if a.Return < b.Invoke then
// a really finished before b started, and any linearization must order
// a first.
type Event struct {
	Client int
	Op     workload.Op
	Invoke int64
	Return int64
	// Err classifies the outcome: nil, repro.ErrNotFound or
	// repro.ErrExists. Any other error fails the history outright.
	Err error
	// Got is the value a Get observed (nil on miss).
	Got []byte
	// Pairs are a scan's observations in arrival order.
	Pairs []ScanPair
	// BadPairs records scan values that did not parse as ValueFor
	// output (corruption — never expected).
	BadPairs int
}

// History is a thread-safe recorder for concurrent operation events.
type History struct {
	clock atomic.Int64

	mu     sync.Mutex
	events []Event
}

// Begin stamps an invocation.
func (h *History) Begin() int64 { return h.clock.Add(1) }

// End stamps the response and records the event.
func (h *History) End(ev Event) {
	ev.Return = h.clock.Add(1)
	h.mu.Lock()
	h.events = append(h.events, ev)
	h.mu.Unlock()
}

// Events returns the recorded events (after all clients stopped).
func (h *History) Events() []Event { return h.events }

// HistoryFrom wraps pre-built events (checker self-tests).
func HistoryFrom(events []Event) *History { return &History{events: events} }

// RunConfig shapes one recorded concurrent history.
type RunConfig struct {
	Seed         int64
	Clients      int     // concurrent client goroutines (default 4)
	OpsPerClient int     // operations each client runs (default 50)
	KeySpace     int     // keys are drawn from [0, KeySpace) (default 64)
	ValueSize    int     // bytes per value (default 24)
	PageSize     int     // database page size (default 512)
	Mix          *OpMix  // operation mix (default DefaultOpMix)
	Reorganize   bool    // run a full reorganization concurrently
	TargetFill   float64 // reorganizer fill target (default 0.9)
}

type OpMix = workload.OpMix

func (c RunConfig) withDefaults() RunConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 50
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 64
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 24
	}
	if c.PageSize <= 0 {
		c.PageSize = 512
	}
	if c.Mix == nil {
		m := workload.DefaultOpMix
		c.Mix = &m
	}
	if c.TargetFill <= 0 {
		c.TargetFill = 0.9
	}
	return c
}

// RunHistory opens a fresh database, preloads half the key space,
// runs the seeded concurrent clients (optionally against a running
// reorganization), and returns the recorded history together with the
// database for post-hoc auditing. The op streams are deterministic in
// Seed; the interleaving is not — linearizability must hold for every
// interleaving, so a scheduler-dependent failure is still a real bug.
func RunHistory(cfg RunConfig) (*History, *repro.DB, error) {
	cfg = cfg.withDefaults()
	db, err := repro.Open(repro.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, nil, err
	}
	for k := 0; k < cfg.KeySpace; k += 2 {
		if err := db.Insert(workload.Key(k), ValueFor(k, 0, cfg.ValueSize)); err != nil {
			return nil, nil, fmt.Errorf("preload key %d: %w", k, err)
		}
	}

	h := &History{}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients+1)
	for c := 0; c < cfg.Clients; c++ {
		ops := workload.NewOpGen(cfg.Seed+int64(c)*7919, cfg.KeySpace, *cfg.Mix).
			Take(cfg.OpsPerClient)
		for i := range ops {
			// Generations must be unique across the whole history, not
			// just per client: the checker identifies values by them.
			ops[i].Gen += c * (cfg.OpsPerClient + 1)
		}
		wg.Add(1)
		go func(client int, ops []workload.Op) {
			defer wg.Done()
			for _, op := range ops {
				if err := runOp(db, h, client, op, cfg.ValueSize); err != nil {
					errs <- fmt.Errorf("client %d %v key %d: %w", client, op.Kind, op.Key, err)
					return
				}
			}
		}(c, ops)
	}
	if cfg.Reorganize {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcfg := repro.DefaultReorgConfig()
			rcfg.TargetFill = cfg.TargetFill
			if _, err := db.Reorganize(rcfg); err != nil {
				errs <- fmt.Errorf("reorganize: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return h, db, err
	}
	return h, db, nil
}

// runOp executes one generated operation and records its event.
// Outcome errors (not-found, exists) are results, not failures.
func runOp(db *repro.DB, h *History, client int, op workload.Op, valueSize int) error {
	key := workload.Key(op.Key)
	val := ValueFor(op.Key, op.Gen, valueSize)
	ev := Event{Client: client, Op: op, Invoke: h.Begin()}
	var err error
	switch op.Kind {
	case workload.OpInsert:
		err = db.Insert(key, val)
	case workload.OpUpdate:
		err = db.Update(key, val)
	case workload.OpDelete:
		err = db.Delete(key)
	case workload.OpPut:
		err = put(db, key, val)
	case workload.OpGet:
		var got []byte
		got, err = db.Get(key)
		ev.Got = got
	case workload.OpScan:
		hi := workload.Key(op.Key + op.Span)
		err = db.Scan(key, hi, func(k, v []byte) bool {
			pk, gen, ok := ParseValue(v)
			if !ok || !bytes.Equal(k, workload.Key(pk)) {
				ev.BadPairs++
				return true
			}
			ev.Pairs = append(ev.Pairs, ScanPair{Key: pk, Gen: gen})
			return true
		})
	}
	if err != nil && !errors.Is(err, repro.ErrNotFound) && !errors.Is(err, repro.ErrExists) {
		return err
	}
	ev.Err = err
	h.End(ev)
	return nil
}

// put is the idempotent upsert: update-or-insert inside ONE
// transaction, retried as a whole on deadlock/switch, so the recorded
// event is a single atomic operation.
func put(db *repro.DB, key, val []byte) error {
	for i := 0; ; i++ {
		t := db.Begin()
		err := t.Update(key, val)
		if errors.Is(err, repro.ErrNotFound) {
			err = t.Insert(key, val)
		}
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
			// A failed commit leaves the transaction active; roll it
			// back so its locks don't outlive this attempt.
			_ = t.Abort()
		} else {
			_ = t.Abort()
		}
		if !repro.IsRetryable(err) || i >= 100 {
			return err
		}
		// Back off so the retries don't all land inside one reorganizer
		// switch window (under -race a window outlasts a tight loop).
		if i > 0 {
			time.Sleep(time.Duration(i) * 50 * time.Microsecond)
		}
	}
}
