package check_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro"
	"repro/internal/check"
)

// adversarialKeys builds key sets chosen to stress prefix-augmented
// slots and truncated separators: long shared stems, keys that are
// proper prefixes of one another, divergence at every depth, and pairs
// differing only in their final byte.
func adversarialKeys() [][]byte {
	var keys [][]byte
	add := func(s string) { keys = append(keys, []byte(s)) }
	// Prefix chains: each key is a prefix of the next.
	for _, stem := range []string{"a", "user", "zzzz"} {
		k := stem
		for i := 0; i < 12; i++ {
			add(k)
			k += "x"
		}
	}
	// Long shared stem with divergence only in the tail.
	for i := 0; i < 300; i++ {
		add(fmt.Sprintf("user%08d", i*7))
	}
	// Same stem, then a second level of shared structure.
	for i := 0; i < 100; i++ {
		add(fmt.Sprintf("user%08d/sub%04d", 42, i))
	}
	// Adjacent keys differing in the last byte only.
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("tail%040d", i))
	}
	// Divergence at byte 0.
	for c := byte('b'); c < 'k'; c++ {
		add(string([]byte{c}) + "-key")
	}
	return keys
}

// TestSeparatorTruncationAdversarial loads adversarial shared-prefix
// keys through enough splits to exercise truncated separators at every
// level, then checks structure (oracle), point lookups and scan order,
// including after deletions and a full reorganization.
func TestSeparatorTruncationAdversarial(t *testing.T) {
	keys := adversarialKeys()
	db, err := repro.Open(repro.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	order := rng.Perm(len(keys))
	val := func(k []byte) []byte {
		// Distinct per key but short enough for the small page size.
		h := uint32(2166136261)
		for _, b := range k {
			h = (h ^ uint32(b)) * 16777619
		}
		return []byte(fmt.Sprintf("v:%08x", h))
	}
	for _, i := range order {
		if err := db.Insert(keys[i], val(keys[i])); err != nil {
			t.Fatalf("insert %q: %v", keys[i], err)
		}
	}
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("after adversarial load:\n%s", rep)
	}

	verify := func(stage string, want [][]byte) {
		t.Helper()
		for _, k := range want {
			v, err := db.Get(k)
			if err != nil {
				t.Fatalf("%s: get %q: %v", stage, k, err)
			}
			if !bytes.Equal(v, val(k)) {
				t.Fatalf("%s: get %q: wrong value %q", stage, k, v)
			}
		}
		var got [][]byte
		err := db.Scan(nil, nil, func(k, _ []byte) bool {
			got = append(got, append([]byte(nil), k...))
			return true
		})
		if err != nil {
			t.Fatalf("%s: scan: %v", stage, err)
		}
		sorted := make([][]byte, len(want))
		copy(sorted, want)
		sort.Slice(sorted, func(a, b int) bool { return bytes.Compare(sorted[a], sorted[b]) < 0 })
		if len(got) != len(sorted) {
			t.Fatalf("%s: scan returned %d keys, want %d", stage, len(got), len(sorted))
		}
		for i := range got {
			if !bytes.Equal(got[i], sorted[i]) {
				t.Fatalf("%s: scan key %d = %q, want %q", stage, i, got[i], sorted[i])
			}
		}
	}
	verify("loaded", keys)

	// Delete a pseudo-random half, making pages sparse and key bounds
	// ragged, then reorganize and re-verify.
	var kept [][]byte
	for i, k := range keys {
		if i%2 == 0 {
			if err := db.Delete(k); err != nil {
				t.Fatalf("delete %q: %v", k, err)
			}
		} else {
			kept = append(kept, k)
		}
	}
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("after deletions:\n%s", rep)
	}
	verify("sparse", kept)

	if _, err := db.Reorganize(repro.DefaultReorgConfig()); err != nil {
		t.Fatal(err)
	}
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("after reorganization:\n%s", rep)
	}
	verify("reorganized", kept)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
