package check

import (
	"repro"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/storage"
)

// TreeOptions tunes which invariants the structure oracle asserts.
// The zero value checks everything unconditional: the WAL rule, the
// tree walk (key order, separators, levels, typing, self ids, cycles),
// the sibling chain, the seek model, and free-map agreement.
type TreeOptions struct {
	// NoSync skips the log flush + FlushAll that normally makes the
	// disk authoritative before structural checks. Only for tests that
	// manage durability themselves.
	NoSync bool
	// MergeableFill, when positive, enables the post-Pass-1 audit: no
	// two adjacent leaves under the same base page may fit together in
	// one page of capacity (pageSize-header)*MergeableFill. This is the
	// paper's compaction goal — per-leaf minimum fill is NOT an
	// invariant (the last leaf of a group is a remainder), but a
	// mergeable adjacent pair means Pass 1 left work behind.
	MergeableFill float64
	// ExpectContiguous enables the post-Pass-2 audit: leaf page ids
	// must be strictly increasing in key order (zero out-of-order
	// pairs), so a range scan never seeks backwards.
	ExpectContiguous bool
}

// Tree runs the structure oracle with default options on a quiescent
// database (no concurrent transactions, no running reorganization).
func Tree(db *repro.DB) *Report { return TreeWith(db, TreeOptions{}) }

// leafInfo is what the walk records per leaf, in key order.
type leafInfo struct {
	id      storage.PageID
	base    storage.PageID // parent level-1 page
	payload int            // used cell bytes + slot directory
}

// TreeWith runs the structure oracle. It collects every violation it
// can find rather than failing fast; use Report.Err for a test error.
func TreeWith(db *repro.DB, opts TreeOptions) *Report {
	rep := &Report{}
	t := db.Tree()
	pager := t.Pager()
	disk := pager.Disk()
	wlog := t.Log()
	pageSize := pager.PageSize()

	// --- WAL rule, on the raw disk images BEFORE any flushing: no
	// stable page may carry an LSN past the durable log horizon.
	durable := wlog.DurableLSN()
	buf := make([]byte, pageSize)
	numPages := disk.NumPages()
	for id := storage.PageID(1); int(id) < numPages; id++ {
		if err := disk.Read(id, buf); err != nil {
			rep.Add("io", id, "raw read failed: %v", err)
			continue
		}
		p := storage.Page(buf)
		if p.Type() == storage.PageFree {
			continue
		}
		if p.LSN() > durable {
			rep.Add("wal-rule", id, "stable image LSN %d > durable log LSN %d",
				p.LSN(), durable)
		}
	}

	// --- Make the disk authoritative for everything that follows.
	if !opts.NoSync {
		if err := wlog.Flush(); err != nil {
			rep.Add("io", 0, "log flush: %v", err)
			return rep
		}
		if err := pager.FlushAll(); err != nil {
			rep.Add("io", 0, "flush all: %v", err)
			return rep
		}
	}

	// --- Anchor and root.
	rootID, _ := t.Root()
	_, sideHead := t.ReorgState()
	if err := disk.Read(btree.AnchorPage, buf); err == nil {
		if storage.Page(buf).Type() != storage.PageAnchor {
			rep.Add("anchor", btree.AnchorPage, "type %v, want anchor",
				storage.Page(buf).Type())
		}
	}

	// --- Recursive walk: bounds, levels, typing, self ids, in-page
	// order, cycles. Collects leaves in key order with their base page.
	visited := make(map[storage.PageID]bool)
	var leaves []leafInfo
	var walk func(id storage.PageID, level int, low, high []byte, base storage.PageID)
	walk = func(id storage.PageID, level int, low, high []byte, base storage.PageID) {
		if visited[id] {
			rep.Add("cycle", id, "page reached twice in tree walk")
			return
		}
		visited[id] = true
		f, err := pager.Fix(id)
		if err != nil {
			rep.Add("io", id, "fix: %v", err)
			return
		}
		p := f.Data()
		if p.ID() != id {
			rep.Add("self-id", id, "header id is %d", p.ID())
		}
		if err := kv.Verify(p); err != nil {
			rep.Add("key-order", id, "%v", err)
		}
		if p.Version() != storage.PageFormatVersion {
			rep.Add("page-version", id, "format v%d, want v%d",
				p.Version(), storage.PageFormatVersion)
		}
		if err := p.CheckSlots(); err != nil {
			rep.Add("slot-dir", id, "%v", err)
		}
		if p.Type() == storage.PageLeaf {
			if level != 0 {
				rep.Add("level", id, "leaf at expected level %d", level)
			}
			n := p.NumSlots()
			if n > 0 {
				if low != nil && kv.Compare(kv.SlotKey(p, 0), low) < 0 {
					rep.Add("bounds", id, "first key %q below separator %q",
						kv.SlotKey(p, 0), low)
				}
				if high != nil && kv.Compare(kv.SlotKey(p, n-1), high) >= 0 {
					rep.Add("bounds", id, "last key %q not below separator %q",
						kv.SlotKey(p, n-1), high)
				}
			}
			leaves = append(leaves, leafInfo{
				id: id, base: base,
				payload: p.UsedBytes() + storage.SlotSize*p.NumSlots(),
			})
			pager.Unfix(f)
			return
		}
		if p.Type() != storage.PageInternal {
			rep.Add("node-type", id, "type %v inside the tree", p.Type())
			pager.Unfix(f)
			return
		}
		if int(p.Aux()) != level {
			rep.Add("level", id, "internal level %d, expected %d", p.Aux(), level)
		}
		n := p.NumSlots()
		if n == 0 {
			rep.Add("empty-internal", id, "internal page has no entries")
			pager.Unfix(f)
			return
		}
		type entry struct {
			key       []byte
			child     storage.PageID
			low, high []byte
		}
		entries := make([]entry, 0, n)
		for i := 0; i < n; i++ {
			key, child := kv.DecodeIndexCell(p.Cell(i))
			if low != nil && kv.Compare(key, low) < 0 {
				rep.Add("bounds", id, "entry %q below separator %q", key, low)
			}
			if high != nil && kv.Compare(key, high) >= 0 {
				rep.Add("bounds", id, "entry %q not below separator %q", key, high)
			}
			e := entry{key: append([]byte(nil), key...), child: child}
			entries = append(entries, e)
		}
		for i := range entries {
			// Low-mark routing: the leftmost child inherits this node's
			// own lower bound, not its entry key.
			entries[i].low = entries[i].key
			if i == 0 {
				entries[i].low = low
			}
			entries[i].high = high
			if i+1 < n {
				entries[i].high = entries[i+1].key
			}
		}
		pager.Unfix(f)
		childBase := base
		if level == 1 {
			childBase = id // this node is the leaves' base page
		}
		for _, e := range entries {
			walk(e.child, level-1, e.low, e.high, childBase)
		}
	}

	rootF, err := pager.Fix(rootID)
	if err != nil {
		rep.Add("io", rootID, "fix root: %v", err)
		return rep
	}
	rootLevel := int(rootF.Data().Aux())
	rootType := rootF.Data().Type()
	pager.Unfix(rootF)
	if rootType != storage.PageInternal {
		rep.Add("node-type", rootID, "root is %v, want internal", rootType)
		return rep
	}
	walk(rootID, rootLevel, nil, nil, 0)

	// --- Sibling chain: two-way pointers must visit exactly the leaves
	// in key order.
	for i, lf := range leaves {
		f, err := pager.Fix(lf.id)
		if err != nil {
			rep.Add("io", lf.id, "fix: %v", err)
			continue
		}
		prev, next := f.Data().Prev(), f.Data().Next()
		pager.Unfix(f)
		var wantPrev, wantNext storage.PageID
		if i > 0 {
			wantPrev = leaves[i-1].id
		}
		if i+1 < len(leaves) {
			wantNext = leaves[i+1].id
		}
		if prev != wantPrev {
			rep.Add("chain", lf.id, "prev = %d, want %d", prev, wantPrev)
		}
		if next != wantNext {
			rep.Add("chain", lf.id, "next = %d, want %d", next, wantNext)
		}
	}

	// --- Post-Pass-1: no mergeable adjacent pair within a base page's
	// group. (Cross-base pairs are exempt: Pass 1 compacts one base
	// page's children at a time, §6.)
	if opts.MergeableFill > 0 {
		capacity := int(float64(pageSize-storage.HeaderSize) * opts.MergeableFill)
		for i := 0; i+1 < len(leaves); i++ {
			a, b := leaves[i], leaves[i+1]
			if a.base != b.base {
				continue
			}
			if a.payload+b.payload <= capacity {
				rep.Add("mergeable", a.id,
					"leaves %d+%d (payload %d+%d) fit in one page of capacity %d",
					a.id, b.id, a.payload, b.payload, capacity)
			}
		}
	}

	// --- Post-Pass-2: key order must equal disk order.
	if opts.ExpectContiguous {
		for i := 1; i < len(leaves); i++ {
			if leaves[i].id <= leaves[i-1].id {
				rep.Add("contiguity", leaves[i].id,
					"leaf id %d not above key-predecessor leaf %d",
					leaves[i].id, leaves[i-1].id)
			}
		}
	}

	// --- Seek model: replaying the leaf chain against the raw disk
	// must cost exactly the seeks the page ids predict (IOStats charges
	// a seek for every non-successor read). The first read's seek
	// depends on prior head position, hence the 0/1 tolerance.
	if len(leaves) > 1 {
		modeled := int64(0)
		for i := 1; i < len(leaves); i++ {
			if leaves[i].id != leaves[i-1].id+1 {
				modeled++
			}
		}
		before := disk.Stats().Seeks.Load()
		ok := true
		for _, lf := range leaves {
			if err := disk.Read(lf.id, buf); err != nil {
				rep.Add("io", lf.id, "raw read failed: %v", err)
				ok = false
				break
			}
		}
		if ok {
			delta := disk.Stats().Seeks.Load() - before
			if delta != modeled && delta != modeled+1 {
				rep.Add("seek-model", 0,
					"scan of %d leaves cost %d seeks, model predicts %d (+1 tolerance)",
					len(leaves), delta, modeled)
			}
		}
	}

	// --- Free map vs. stable storage vs. reachability. The side-file
	// chain (if a reorganization was interrupted before its switch) is
	// reachable state too.
	reachable := make(map[storage.PageID]bool, len(visited)+2)
	for id := range visited {
		reachable[id] = true
	}
	reachable[btree.AnchorPage] = true
	for id := sideHead; id != storage.InvalidPage && id != 0; {
		if reachable[id] {
			rep.Add("cycle", id, "side-file chain loops")
			break
		}
		reachable[id] = true
		if err := disk.Read(id, buf); err != nil {
			rep.Add("io", id, "raw read failed: %v", err)
			break
		}
		id = storage.Page(buf).Next()
	}

	fm := pager.FreeMap()
	types := disk.ScanTypes()
	for i := 1; i < len(types); i++ {
		id := storage.PageID(i)
		diskUsed := types[i] != storage.PageFree
		mapUsed := fm.IsAllocated(id)
		switch {
		case diskUsed && !mapUsed:
			rep.Add("freemap-drift", id,
				"stable image is %v but the free map says free", types[i])
		case !diskUsed && mapUsed:
			rep.Add("freemap-drift", id,
				"free map says allocated but the stable image is free")
		}
		if diskUsed && !reachable[id] {
			rep.Add("freemap-leak", id,
				"allocated %v page unreachable from anchor, tree or side file", types[i])
		}
		if !diskUsed && reachable[id] {
			rep.Add("freemap-leak", id, "reachable page has a free stable image")
		}
	}

	return rep
}
