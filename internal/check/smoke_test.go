package check_test

import (
	"testing"

	"repro/internal/check"
)

// A reduced smoke budget keeps this in tier-1 time; CI's check-smoke
// job runs the full default budget via reorg-bench -check.
func TestSmokeReducedBudget(t *testing.T) {
	res, err := check.Smoke(check.SmokeConfig{
		Seed:           1,
		Histories:      12,
		CrashSchedules: 4,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histories != 12 || res.CrashRuns != 4 {
		t.Fatalf("budget not spent: %+v", res)
	}
	if res.Hits == 0 || res.SideApplied == 0 {
		t.Fatalf("harness under-exercised: %+v", res)
	}
}

func TestHistoryConfigDeterministic(t *testing.T) {
	a, b := check.HistoryConfigFor(17), check.HistoryConfigFor(17)
	if a != b {
		t.Fatalf("same seed, different shapes: %+v vs %+v", a, b)
	}
	// Shapes must actually vary across seeds.
	varies := false
	base := check.HistoryConfigFor(0)
	for s := int64(1); s < 20; s++ {
		c := check.HistoryConfigFor(s)
		if c.Clients != base.Clients || c.OpsPerClient != base.OpsPerClient ||
			c.Reorganize != base.Reorganize {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("derived history shapes never vary")
	}
}
