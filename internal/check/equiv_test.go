package check_test

import (
	"testing"

	"repro/internal/check"
)

func TestEquivClean(t *testing.T) {
	res, err := check.Equiv(check.EquivConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("clean run reports a crash")
	}
	if res.SideApplied == 0 {
		t.Fatal("clean run applied no side-file entries")
	}
	if res.Records == 0 {
		t.Fatal("empty final contents")
	}
}

func TestEquivSeedsDiffer(t *testing.T) {
	// Different seeds must produce different programs (a degenerate
	// generator would silence the whole suite).
	a, err := check.Equiv(check.EquivConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := check.Equiv(check.EquivConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Records == b.Records && a.SideApplied == b.SideApplied {
		t.Logf("seeds 2 and 3 coincide on summary counters (records=%d side=%d); acceptable but worth knowing",
			a.Records, a.SideApplied)
	}
}

func TestEquivWithCrashSchedules(t *testing.T) {
	cfg := check.EquivConfig{Seed: 4}
	hits, err := check.EquivHits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits < 20 {
		t.Fatalf("only %d fault-point hits; program too small to schedule crashes", hits)
	}
	// A spread of crash points: early (load), middle (reorg passes),
	// late (pass 3 / seg2).
	for i := 0; i < 6; i++ {
		hit := 1 + i*(hits-1)/5
		cfg.CrashHit = hit
		res, err := check.Equiv(cfg)
		if err != nil {
			t.Fatalf("crash at hit %d/%d: %v\nrepro: reorg-bench -check -seed 4 -crashhit %d",
				hit, hits, err, hit)
		}
		if !res.Crashed {
			t.Logf("hit %d/%d not reached (run completed clean)", hit, hits)
		}
	}
}

func TestEquivDaemonArmClean(t *testing.T) {
	res, err := check.Equiv(check.EquivConfig{Seed: 5, Daemon: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DaemonUnits == 0 {
		t.Fatal("daemon arm ran no reorganization units")
	}
	if res.SideApplied == 0 {
		t.Fatal("manual arm stopped exercising the side file")
	}
}

func TestEquivDaemonArmCrashSchedules(t *testing.T) {
	cfg := check.EquivConfig{Seed: 6, Daemon: true}
	hits, err := check.EquivHits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits < 20 {
		t.Fatalf("only %d fault-point hits on the daemon arm", hits)
	}
	crashed := 0
	for i := 0; i < 5; i++ {
		hit := 1 + i*(hits-1)/4
		cfg.CrashHit = hit
		res, err := check.Equiv(cfg)
		if err != nil {
			t.Fatalf("daemon crash at hit %d/%d: %v\nrepro: reorg-bench -check -seed 6 -crashhit %d -daemon",
				hit, hits, err, hit)
		}
		if res.Crashed {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("no scheduled crash fired on the daemon arm")
	}
}
