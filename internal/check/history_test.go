package check_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/check"
	"repro/internal/workload"
)

func TestValueRoundTrip(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {7, 1}, {63, 999}, {999999, 12345}} {
		v := check.ValueFor(tc[0], tc[1], 32)
		k, g, ok := check.ParseValue(v)
		if !ok || k != tc[0] || g != tc[1] {
			t.Fatalf("ValueFor(%d,%d) -> %q -> (%d,%d,%v)", tc[0], tc[1], v, k, g, ok)
		}
	}
}

func TestHistorySingleClientLinearizable(t *testing.T) {
	cfg := check.RunConfig{Seed: 42, Clients: 1, OpsPerClient: 200}
	h, db, err := check.RunHistory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Linearize(h, cfg); err != nil {
		t.Fatal(err)
	}
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("post-history tree flagged:\n%s", rep)
	}
}

func TestHistoryConcurrentLinearizable(t *testing.T) {
	cfg := check.RunConfig{Seed: 7, Clients: 6, OpsPerClient: 80}
	h, _, err := check.RunHistory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Linearize(h, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryLinearizableDuringReorg(t *testing.T) {
	cfg := check.RunConfig{Seed: 11, Clients: 4, OpsPerClient: 100, Reorganize: true}
	h, db, err := check.RunHistory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Linearize(h, cfg); err != nil {
		t.Fatal(err)
	}
	if rep := check.Tree(db); !rep.OK() {
		t.Fatalf("post-reorg tree flagged:\n%s", rep)
	}
}

// The checker must reject impossible histories, not just accept real
// ones. Key 1 starts absent (odd keys are not preloaded).
func TestLinearizeRejectsFutureRead(t *testing.T) {
	cfg := check.RunConfig{}
	get := check.Event{
		Client: 0,
		Op:     workload.Op{Kind: workload.OpGet, Key: 1},
		Invoke: 1, Return: 2,
		Got: check.ValueFor(1, 5, 24),
	}
	ins := check.Event{
		Client: 1,
		Op:     workload.Op{Kind: workload.OpInsert, Key: 1, Gen: 5},
		Invoke: 3, Return: 4,
	}
	h := check.HistoryFrom([]check.Event{get, ins})
	err := check.Linearize(h, cfg)
	if err == nil || !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("future read accepted: %v", err)
	}
}

func TestLinearizeRejectsLostUpdate(t *testing.T) {
	cfg := check.RunConfig{}
	// Sequential on key 1: insert gen 1, delete ok, then a get that
	// still observes gen 1 — a lost delete.
	evs := []check.Event{
		{Op: workload.Op{Kind: workload.OpInsert, Key: 1, Gen: 1}, Invoke: 1, Return: 2},
		{Op: workload.Op{Kind: workload.OpDelete, Key: 1}, Invoke: 3, Return: 4},
		{Op: workload.Op{Kind: workload.OpGet, Key: 1}, Invoke: 5, Return: 6,
			Got: check.ValueFor(1, 1, 24)},
	}
	err := check.Linearize(check.HistoryFrom(evs), cfg)
	if err == nil || !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("lost delete accepted: %v", err)
	}
}

func TestLinearizeAcceptsOverlapEitherOrder(t *testing.T) {
	cfg := check.RunConfig{}
	// Two overlapping ops on key 1: the get may run before the insert
	// (not-found) even though its response comes later.
	evs := []check.Event{
		{Op: workload.Op{Kind: workload.OpInsert, Key: 1, Gen: 1}, Invoke: 1, Return: 3},
		{Op: workload.Op{Kind: workload.OpGet, Key: 1}, Invoke: 2, Return: 4,
			Err: repro.ErrNotFound},
	}
	if err := check.Linearize(check.HistoryFrom(evs), cfg); err != nil {
		t.Fatal(err)
	}
	// And the same overlap where the get sees the insert.
	evs[1].Err = nil
	evs[1].Got = check.ValueFor(1, 1, 24)
	if err := check.Linearize(check.HistoryFrom(evs), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizeRejectsBadScan(t *testing.T) {
	cfg := check.RunConfig{}
	evs := []check.Event{
		{Op: workload.Op{Kind: workload.OpScan, Key: 0, Span: 10}, Invoke: 1, Return: 2,
			Pairs: []check.ScanPair{{Key: 4, Gen: 0}, {Key: 2, Gen: 0}}},
	}
	err := check.Linearize(check.HistoryFrom(evs), cfg)
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order scan accepted: %v", err)
	}
	evs[0].Pairs = []check.ScanPair{{Key: 3, Gen: 99}}
	err = check.Linearize(check.HistoryFrom(evs), cfg)
	if err == nil || !strings.Contains(err.Error(), "never written") {
		t.Fatalf("phantom scan value accepted: %v", err)
	}
}

func TestHistoryDeterministicStreams(t *testing.T) {
	a := workload.NewOpGen(99, 64, workload.DefaultOpMix).Take(50)
	b := workload.NewOpGen(99, 64, workload.DefaultOpMix).Take(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across same-seed generators: %+v vs %+v", i, a[i], b[i])
		}
	}
	if bytes.Equal(check.ValueFor(1, 1, 24), check.ValueFor(1, 2, 24)) {
		t.Fatal("distinct generations produced identical values")
	}
}
