package lockclass_test

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/lockclass"
)

// TestSharedOrderTable is the golden tie between the two consumers of
// the class table: the static checker (internal/analysis/latchorder)
// ranks acquisition edges with lockclass.Rank, and the runtime tracker
// exposes its order through invariant.ClassOrder. Both must be views
// of the one lockclass.Order slice — element-wise and by rank.
func TestSharedOrderTable(t *testing.T) {
	runtime := invariant.ClassOrder()
	if len(runtime) != len(lockclass.Order) {
		t.Fatalf("invariant.ClassOrder has %d classes, lockclass.Order has %d",
			len(runtime), len(lockclass.Order))
	}
	for i, c := range lockclass.Order {
		if runtime[i] != c {
			t.Fatalf("order diverges at %d: runtime %q, static %q", i, runtime[i], c)
		}
		r, ok := lockclass.Rank(c)
		if !ok || r != i {
			t.Fatalf("Rank(%q) = %d, %v; want %d, true", c, r, ok, i)
		}
	}
}

// TestClassesAreRankedOrDeliberatelyNot pins the invariant latchorder
// relies on: every class name in the Classes map is either ranked in
// Order or known-unranked on purpose. A typo in either table shows up
// here rather than as a silently unordered class.
func TestClassesAreRankedOrDeliberatelyNot(t *testing.T) {
	ranked := make(map[string]bool, len(lockclass.Order))
	for _, c := range lockclass.Order {
		ranked[c] = true
	}
	for site, class := range lockclass.Classes {
		if !ranked[class] {
			t.Errorf("class %q (from %s) is not in lockclass.Order", class, site)
		}
	}
	// And no ranked class is orphaned: each must be reachable from at
	// least one declaration site.
	sites := make(map[string]bool, len(lockclass.Classes))
	for _, class := range lockclass.Classes {
		sites[class] = true
	}
	for _, c := range lockclass.Order {
		if !sites[c] {
			t.Errorf("ranked class %q has no declaration site in lockclass.Classes", c)
		}
	}
}
