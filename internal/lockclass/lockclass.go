// Package lockclass is the single source of truth for the repo's lock
// classes and their global acquisition order. Two consumers read it:
//
//   - internal/analysis/latchorder proves, over every static call path,
//     that no acquisition edge contradicts Order and that the whole
//     acquisition graph is acyclic;
//   - internal/invariant's runtime tracker (the -tags invariants build)
//     checks the same ranks against the schedules that actually execute.
//
// Keeping both checkers on one table is the point: a class added or
// reordered here changes the static proof and the runtime assertion in
// the same commit, and a golden test pins the two views together.
//
// Keys name the mutex by its declaration site: "pkg.Type.field" for a
// named mutex field, "pkg.Type" for an embedded mutex (the Frame
// latch), and "pkg.var" for a package-level mutex variable. Values are
// the class names internal/invariant has used since PR 4
// ("storage.shard", "storage.alloc", "storage.dep" predate this
// package and must not change spelling).
package lockclass

// Classes maps mutex declaration sites to lock-class names. A mutex
// not listed here gets an automatic class derived from its key; such
// classes are unranked — latchorder still includes them in the cycle
// check but cannot order them against ranked classes.
var Classes = map[string]string{
	"repro.DB.mu":           "repro.db",
	"repro.backoffMu":       "repro.backoff",
	"fault.Injector.mu":     "fault.injector",
	"lock.Manager.mu":       "lock.manager",
	"wal.Log.mu":            "wal.log",
	"wal.Log.rngMu":         "wal.rng",
	"txn.Txn.mu":            "txn.txn",
	"txn.Manager.mu":        "txn.manager",
	"metrics.Counters.mu":   "metrics.counters",
	"sidefile.SideFile.mu":  "sidefile.table",
	"storage.FileDisk.mu":   "storage.disk",
	"storage.MemDisk.mu":    "storage.disk",
	"storage.Frame":         "storage.frame",
	"storage.Frame.flushMu": "storage.flush",
	"storage.shard.mu":      "storage.shard",
	"storage.Pager.allocMu": "storage.alloc",
	"storage.Pager.depMu":   "storage.dep",
	"storage.Pager.rngMu":   "storage.rng",
	"btree.Tree.mu":         "btree.tree",
	"btree.Tree.deferredMu": "btree.deferred",
	"core.reorgTable.mu":    "core.reorg",
	"core.pass3State.mu":    "core.pass3",
	"check.History.mu":      "check.history",
}

// Order lists every ranked lock class, outermost first. A goroutine
// holding class Order[i] may acquire Order[j] only when i < j (or when
// the two are the same class — per-instance locks of one class, like
// frame lock coupling and the careful-write flush cascade, carry their
// own ordering arguments, mirroring the runtime tracker's same-class
// exemption).
//
// The order encodes the protocols the code actually uses:
//
//   - repro.db wraps whole operations (Checkpoint holds it across a
//     reorg-table snapshot), so it is outermost;
//   - the reorganizer's table and pass-3 state sit above the tree and
//     pool structures they read;
//   - storage.flush (the careful-write flush serialiser) is taken
//     before the shard mutex (Deallocate) and before frame latches,
//     dep-graph, WAL and disk (flushFrame's cascade);
//   - a held frame latch logs updates: frame → txn.txn → txn.manager
//     and txn.txn → wal.log (LogUpdate's registration and append);
//   - flushAnchor takes the tree mutex under the anchor frame's latch,
//     so storage.frame precedes btree.tree;
//   - the WAL appends under its mutex through fault injection
//     (wal.log → fault.injector), and both disks do the same
//     (storage.disk → fault.injector);
//   - RNG and metrics mutexes are leaves.
var Order = []string{
	"repro.db",
	"core.reorg",
	"core.pass3",
	"sidefile.table",
	"btree.deferred",
	"lock.manager",
	"storage.flush",
	"storage.shard",
	"storage.frame",
	"txn.txn",
	"txn.manager",
	"btree.tree",
	"wal.log",
	"storage.dep",
	"storage.alloc",
	"storage.disk",
	"fault.injector",
	"metrics.counters",
	"storage.rng",
	"wal.rng",
	"repro.backoff",
	"check.history",
}

var rank = func() map[string]int {
	m := make(map[string]int, len(Order))
	for i, c := range Order {
		m[c] = i
	}
	return m
}()

// Rank returns the class's position in Order (0 is outermost) and
// whether the class is ranked at all.
func Rank(class string) (int, bool) {
	r, ok := rank[class]
	return r, ok
}

// Ranked reports whether the class appears in Order.
func Ranked(class string) bool {
	_, ok := rank[class]
	return ok
}
