// Package fault is a process-wide, deterministic fault-injection
// registry. Named fault points are threaded through the storage and
// reorganization layers (disk.read, disk.write, wal.append, wal.force,
// pager.flush, pager.evict, and the reorganizer's "reorg.*" stages);
// each point can be armed with a schedule that crashes the simulated
// system on its N-th hit, returns a transient I/O error with a seeded
// probability, or tears a write (first half reaches stable storage,
// then the crash).
//
// A crash is delivered as a panic carrying *Crash so it unwinds the
// whole operation stack exactly like a machine failure would: no error
// path gets a chance to "handle" it. The crash harness catches it with
// Catch, then drives the usual Crash()/Restart() recovery protocol.
//
// Hit counting is deterministic for a deterministic workload: the
// injector keeps a global hit sequence number and per-point counters,
// and can record a trace of every hit (sweep enumeration mode). The
// same scripted workload re-run with a crash armed at hit index i then
// fails at exactly the same operation — the basis of the exhaustive
// crash-schedule sweep in internal/fault/sweep.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Fault-point names installed in the storage and WAL layers. The
// reorganizer's points are derived from its event stages as
// "reorg.<stage>" (e.g. "reorg.compact.begin", "reorg.pass3.switch.pre").
const (
	DiskRead   = "disk.read"
	DiskWrite  = "disk.write"
	WALAppend  = "wal.append"
	WALForce   = "wal.force"
	PagerFlush = "pager.flush"
	PagerEvict = "pager.evict"
	// DaemonTick fires at the top of every reorganization-daemon policy
	// tick; DaemonUnitStart fires just before the daemon hands an
	// increment to the reorganizer. Together they let the crash sweep
	// treat daemon-initiated units like manual ones.
	DaemonTick      = "daemon.tick"
	DaemonUnitStart = "daemon.unit.start"
)

// ErrInjected marks a transient injected I/O error. The storage layer
// absorbs these with bounded retry and jittered backoff; only after the
// retry budget is exhausted does a typed permanent error surface.
var ErrInjected = errors.New("fault: injected transient I/O error")

// IsTransient reports whether err is an injected transient fault that
// a caller should absorb by retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrInjected) }

// Kind selects what an armed schedule does when it fires.
type Kind int

const (
	// KindError returns a transient ErrInjected from the fault point.
	KindError Kind = iota
	// KindCrash panics with *Crash: the simulated machine fails at
	// this point and only stable storage survives.
	KindCrash
	// KindTorn is KindCrash at a tear-capable point (disk.write,
	// wal.force): the first half of the write reaches stable storage
	// before the crash.
	KindTorn
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindCrash:
		return "crash"
	case KindTorn:
		return "torn"
	default:
		return "unknown"
	}
}

// Schedule arms one fault point.
type Schedule struct {
	Kind Kind
	// OnHit fires on the N-th hit (1-based) of the point. With
	// MaxFires > 0 the schedule keeps firing for hits
	// [OnHit, OnHit+MaxFires).
	OnHit int64
	// Prob fires on any hit with this probability under the
	// injector's seeded RNG (used when OnHit is 0).
	Prob float64
	// MaxFires caps the number of firings (0 = once for OnHit,
	// unlimited for Prob).
	MaxFires int
}

// Crash is the panic payload of KindCrash/KindTorn: the point that
// fired, its global and per-point hit indices, and whether the write
// in flight was torn.
type Crash struct {
	Point string
	Seq   int64 // global hit index across all points
	Hit   int64 // per-point hit index
	Torn  bool
}

func (c *Crash) Error() string {
	return fmt.Sprintf("fault: injected crash at %s (hit %d, seq %d, torn %v)",
		c.Point, c.Hit, c.Seq, c.Torn)
}

// FailStop builds the crash payload for a fail-stop condition detected
// by a component itself (e.g. the WAL's append retry budget running
// out: a database that cannot write its log must halt).
func FailStop(point string) *Crash {
	return &Crash{Point: point + " (fail-stop)"}
}

// sched is an armed schedule plus its firing count.
type sched struct {
	Schedule
	fires int
}

// Injector is the registry. The zero value of *Injector (nil) is a
// valid no-op injector, so components hold a possibly-nil pointer and
// call Hit unconditionally. All methods are safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	seq       int64
	hits      map[string]int64
	points    map[string]*sched
	crashAt   int64 // global hit index to crash at (0 = disabled)
	crashTorn bool
	tracing   bool
	trace     []string
}

// New creates an injector whose probabilistic schedules draw from a
// RNG seeded with seed (deterministic under test).
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		hits:   make(map[string]int64),
		points: make(map[string]*sched),
	}
}

// Arm installs (replacing) a schedule on one fault point.
func (in *Injector) Arm(point string, s Schedule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[point] = &sched{Schedule: s}
}

// ArmCrashAtSeq arms a crash at the n-th global hit across all points
// (1-based); with torn set, a tear-capable point tears its write
// first. This is the sweep's primitive.
func (in *Injector) ArmCrashAtSeq(n int64, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
	in.crashTorn = torn
}

// Disarm removes every schedule (counters keep counting). Recovery
// runs disarmed so a restart is never re-injected.
func (in *Injector) Disarm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = make(map[string]*sched)
	in.crashAt = 0
	in.crashTorn = false
}

// Reset disarms and zeroes all counters and the trace.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = make(map[string]*sched)
	in.crashAt = 0
	in.crashTorn = false
	in.seq = 0
	in.hits = make(map[string]int64)
	in.trace = nil
}

// StartTrace begins recording the point name of every hit.
func (in *Injector) StartTrace() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracing = true
	in.trace = nil
}

// StopTrace ends recording and returns the trace (hit i is trace[i-1]).
func (in *Injector) StopTrace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracing = false
	out := in.trace
	in.trace = nil
	return out
}

// Seq returns the global hit count so far.
func (in *Injector) Seq() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// HitCounts returns a copy of the per-point hit counters.
func (in *Injector) HitCounts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.hits))
	for k, v := range in.hits {
		out[k] = v
	}
	return out
}

// Points returns the names of all points hit so far, sorted.
func (in *Injector) Points() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.hits))
	for k := range in.hits {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Hit reports one arrival at a fault point that cannot tear.
func (in *Injector) Hit(point string) error { return in.HitTorn(point, nil) }

// HitTorn reports one arrival at a fault point. At tear-capable points
// the caller passes torn, a closure that makes the first half of the
// in-flight write stable; it is invoked (under the caller's locks)
// right before a torn crash panics.
func (in *Injector) HitTorn(point string, torn func()) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	in.hits[point]++
	hit := in.hits[point]
	if in.tracing {
		in.trace = append(in.trace, point)
	}
	if in.crashAt != 0 && in.seq == in.crashAt {
		c := &Crash{Point: point, Seq: in.seq, Hit: hit,
			Torn: in.crashTorn && torn != nil}
		if c.Torn {
			torn()
		}
		panic(c)
	}
	s, ok := in.points[point]
	if !ok {
		return nil
	}
	fire := false
	switch {
	case s.OnHit > 0:
		max := int64(s.MaxFires)
		if max <= 0 {
			max = 1
		}
		fire = hit >= s.OnHit && hit < s.OnHit+max
	case s.Prob > 0:
		fire = (s.MaxFires <= 0 || s.fires < s.MaxFires) && in.rng.Float64() < s.Prob
	}
	if !fire {
		return nil
	}
	s.fires++
	switch s.Kind {
	case KindError:
		return fmt.Errorf("%s hit %d: %w", point, hit, ErrInjected)
	default: // KindCrash, KindTorn
		c := &Crash{Point: point, Seq: in.seq, Hit: hit,
			Torn: s.Kind == KindTorn && torn != nil}
		if c.Torn {
			torn()
		}
		panic(c)
	}
}

// AsCrash extracts the *Crash from a recovered panic value.
func AsCrash(r any) (*Crash, bool) {
	c, ok := r.(*Crash)
	return c, ok
}

// Catch runs fn, converting an injected-crash panic into a returned
// *Crash. Any other panic is re-raised.
func Catch(fn func() error) (crash *Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := AsCrash(r); ok {
				crash = c
				return
			}
			panic(r)
		}
	}()
	err = fn()
	return
}
