package fault

import (
	"errors"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Hit("disk.read"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	if err := in.HitTorn("disk.write", func() { t.Fatal("torn fired") }); err != nil {
		t.Fatalf("nil injector HitTorn returned %v", err)
	}
	if got := in.Seq(); got != 0 {
		t.Fatalf("nil Seq = %d", got)
	}
	in.Disarm() // must not panic
}

func TestOnHitSchedule(t *testing.T) {
	in := New(1)
	in.Arm(DiskWrite, Schedule{Kind: KindError, OnHit: 3})
	for i := 1; i <= 5; i++ {
		err := in.Hit(DiskWrite)
		if i == 3 {
			if !IsTransient(err) {
				t.Fatalf("hit %d: want transient error, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
}

func TestOnHitMaxFiresRange(t *testing.T) {
	in := New(1)
	in.Arm(DiskRead, Schedule{Kind: KindError, OnHit: 2, MaxFires: 3})
	var fired int
	for i := 1; i <= 6; i++ {
		if err := in.Hit(DiskRead); err != nil {
			if i < 2 || i >= 5 {
				t.Fatalf("hit %d fired outside [2,5)", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestProbScheduleDeterministic(t *testing.T) {
	run := func() []int {
		in := New(42)
		in.Arm(WALAppend, Schedule{Kind: KindError, Prob: 0.3})
		var fired []int
		for i := 1; i <= 50; i++ {
			if err := in.Hit(WALAppend); err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("probabilistic schedule never fired in 50 hits at p=0.3")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic fire sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProbMaxFires(t *testing.T) {
	in := New(7)
	in.Arm(PagerFlush, Schedule{Kind: KindError, Prob: 1.0, MaxFires: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if err := in.Hit(PagerFlush); err != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d, want MaxFires=2", fired)
	}
}

func TestCrashSchedulePanics(t *testing.T) {
	in := New(1)
	in.Arm(DiskWrite, Schedule{Kind: KindCrash, OnHit: 2})
	if err := in.Hit(DiskWrite); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	crash, err := Catch(func() error { return in.Hit(DiskWrite) })
	if err != nil {
		t.Fatalf("Catch err: %v", err)
	}
	if crash == nil {
		t.Fatal("no crash delivered on hit 2")
	}
	if crash.Point != DiskWrite || crash.Hit != 2 || crash.Torn {
		t.Fatalf("crash = %+v", crash)
	}
}

func TestTornCrashInvokesTearClosure(t *testing.T) {
	in := New(1)
	in.Arm(DiskWrite, Schedule{Kind: KindTorn, OnHit: 1})
	var torn bool
	crash, err := Catch(func() error {
		return in.HitTorn(DiskWrite, func() { torn = true })
	})
	if err != nil {
		t.Fatalf("Catch err: %v", err)
	}
	if crash == nil || !crash.Torn || !torn {
		t.Fatalf("crash=%+v torn=%v, want torn crash with closure invoked", crash, torn)
	}
}

func TestTornAtNonTearablePointDowngrades(t *testing.T) {
	in := New(1)
	in.Arm(WALAppend, Schedule{Kind: KindTorn, OnHit: 1})
	crash, _ := Catch(func() error { return in.Hit(WALAppend) })
	if crash == nil {
		t.Fatal("no crash")
	}
	if crash.Torn {
		t.Fatal("Hit (no tear closure) reported a torn crash")
	}
}

func TestArmCrashAtSeq(t *testing.T) {
	in := New(1)
	in.ArmCrashAtSeq(3, false)
	_ = in.Hit("a")
	_ = in.Hit("b")
	crash, _ := Catch(func() error { return in.Hit("c") })
	if crash == nil || crash.Point != "c" || crash.Seq != 3 {
		t.Fatalf("crash = %+v, want point c at seq 3", crash)
	}
}

func TestDisarmStopsFiringKeepsCounting(t *testing.T) {
	in := New(1)
	in.Arm(DiskRead, Schedule{Kind: KindError, OnHit: 1, MaxFires: 1000})
	if err := in.Hit(DiskRead); err == nil {
		t.Fatal("armed point did not fire")
	}
	in.Disarm()
	if err := in.Hit(DiskRead); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if in.Seq() != 2 {
		t.Fatalf("Seq = %d after 2 hits", in.Seq())
	}
	if in.HitCounts()[DiskRead] != 2 {
		t.Fatalf("HitCounts = %v", in.HitCounts())
	}
}

func TestTraceRecordsHits(t *testing.T) {
	in := New(1)
	in.StartTrace()
	_ = in.Hit("x")
	_ = in.Hit("y")
	_ = in.Hit("x")
	tr := in.StopTrace()
	want := []string{"x", "y", "x"}
	if len(tr) != len(want) {
		t.Fatalf("trace %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, tr[i], want[i])
		}
	}
	pts := in.Points()
	if len(pts) != 2 || pts[0] != "x" || pts[1] != "y" {
		t.Fatalf("Points = %v", pts)
	}
}

func TestCatchPassesThroughErrorsAndForeignPanics(t *testing.T) {
	sentinel := errors.New("boom")
	crash, err := Catch(func() error { return sentinel })
	if crash != nil || !errors.Is(err, sentinel) {
		t.Fatalf("crash=%v err=%v", crash, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_, _ = Catch(func() error { panic("not a crash") })
}
