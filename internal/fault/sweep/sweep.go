// Package sweep implements the exhaustive crash-schedule sweep (E5b):
// a scripted sparse-load → concurrent-update → reorganize workload is
// run once with a tracing fault.Injector to enumerate every fault-point
// hit, then re-run once per hit index with a crash armed at exactly
// that hit. After each injected crash the harness calls Crash() and
// Restart() and asserts the recovery invariants:
//
//   - tree.Check() passes (structural integrity),
//   - every committed key is readable with its committed value,
//   - no uncommitted key survives,
//   - the operation in flight at the crash is atomic (fully applied or
//     fully absent),
//   - the reorganization unit in flight is fully absent or fully
//     forward-completed (implied by the first three plus scan order),
//   - the recovered database accepts new work (liveness probe).
//
// The workload is strictly single-goroutine so the hit sequence is
// deterministic: "concurrent" updates are injected from the
// reorganizer's OnEvent hook at stages where the reorganizer holds no
// lock that the update needs (pass3.base targets keys in bases already
// read; pass3.built runs after every base has been read, so updates
// flow through the side file).
//
// Hits during repro.Open (initial formatting of a fresh database) are
// excluded: a crash before Open returns leaves no database to recover.
// Torn crashes are armed only at wal.force (the log tail tears at a
// record boundary after Log.Crash truncation); torn data pages would
// need full-page writes to recover, which the storage layer does not
// implement (documented in DESIGN.md).
//
// With Config.Daemon set, the sweep runs a second workload shape: the
// explicit reorganization passes are replaced by harness-driven ticks
// of the autonomous daemon (manual mode) drained to quiescence between
// update waves. The hit trace then includes daemon.tick and
// daemon.unit.start plus every pass-1 unit fault point reached from a
// daemon-initiated slice, and a crash is armed at each — so recovery
// is verified when the reorganization in flight was the daemon's
// decision, not a test's.
package sweep

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config sizes the sweep. The zero value gets usable defaults.
type Config struct {
	// Records loaded before sparsification (default 48).
	Records int
	// ValueSize in bytes per record (default 40).
	ValueSize int
	// PageSize of the database (default 512, the smallest size whose
	// value limit admits the 40-byte payloads; small pages keep the
	// workload short while still building a multi-level tree).
	PageSize int
	// BufferPool caps resident frames (default 4; a small pool forces
	// evictions so pager.evict, pager.flush and disk.read are
	// exercised continuously).
	BufferPool int
	// KeepEvery keeps every KeepEvery-th record at sparsification
	// (default 3: ~33% occupancy, the paper's sparse regime).
	KeepEvery int
	// Seed for the injector RNG (default 1; the sweep itself arms only
	// deterministic crash schedules).
	Seed int64
	// Stride crashes at every Stride-th hit (default 1 = every hit).
	Stride int
	// Torn additionally re-runs every wal.force hit with a torn log
	// tail (default true when Stride == 1 semantics are wanted; set by
	// callers explicitly).
	Torn bool
	// MaxRuns caps the number of crash runs (0 = unlimited).
	MaxRuns int
	// Backend selects the storage backend: "mem" (default) or "file".
	// The file backend gives every run a fresh directory under Dir, so
	// each crash recovers against real page and segment files.
	Backend string
	// Dir is the parent directory for file-backend run directories
	// (default: the OS temp dir).
	Dir string
	// WALSegmentBytes overrides the file backend's WAL rotation
	// threshold (0 keeps the default); small values make the sweep
	// cross segment boundaries constantly.
	WALSegmentBytes int64
	// Daemon switches the workload to the autonomous-daemon shape: the
	// explicit reorganization passes are replaced by manual daemon
	// ticks drained to quiescence, so crash schedules land inside
	// daemon-initiated increments and at the daemon's own fault points.
	Daemon bool
	// Logf receives progress output (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 96
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 40
	}
	if c.PageSize <= 0 {
		c.PageSize = 512
	}
	if c.BufferPool <= 0 {
		c.BufferPool = 4
	}
	if c.KeepEvery <= 0 {
		c.KeepEvery = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.Backend == "" {
		c.Backend = "mem"
	}
	return c
}

// Result summarises a sweep.
type Result struct {
	// TotalHits is the number of fault-point hits enumerated in the
	// scripted workload (after Open).
	TotalHits int
	// Points is the sorted set of distinct fault points hit.
	Points []string
	// CrashRuns and TornRuns count the crash re-runs performed.
	CrashRuns int
	TornRuns  int
	// ForwardCompleted counts restarts that finished an in-flight
	// reorganization unit forward; Pass3Abandoned/Pass3Completed count
	// the two pass-3 reconciliation outcomes.
	ForwardCompleted int
	Pass3Abandoned   int
	Pass3Completed   int
}

// op is one scripted mutation, tracked for crash-atomicity checking.
type op struct {
	kind string // "insert", "update", "delete"
	key  string
	val  string
}

// script is one deterministic execution of the workload plus the
// committed-state model used to verify recovery.
type script struct {
	cfg Config
	db  *repro.DB
	// dir is the run's database directory (file backend; "" for mem).
	dir string
	// model holds exactly the committed (acknowledged) records.
	model map[string]string
	// pending is the mutation in flight; at a crash it is ambiguous
	// (fully applied or fully absent) and checked as such.
	pending *op
}

func newScript(cfg Config, inj *fault.Injector) (*script, error) {
	opts := repro.Options{
		PageSize:        cfg.PageSize,
		BufferPoolPages: cfg.BufferPool,
		FaultInjector:   inj,
		WALSegmentBytes: cfg.WALSegmentBytes,
	}
	if cfg.Daemon {
		dcfg := daemon.DefaultConfig()
		dcfg.Manual = true
		dcfg.Ranges = 8
		dcfg.UnitsPerTick = 4
		dcfg.MinLeaves = 2
		opts.Daemon = &dcfg
	}
	var dir string
	if cfg.Backend == "file" {
		var err error
		dir, err = os.MkdirTemp(cfg.Dir, "sweep-run-")
		if err != nil {
			return nil, fmt.Errorf("sweep: run dir: %w", err)
		}
		opts.Dir = dir
	}
	db, err := repro.Open(opts)
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	return &script{cfg: cfg, db: db, dir: dir, model: make(map[string]string)}, nil
}

// cleanup closes the run's database (releasing file descriptors — a
// sweep performs hundreds of runs) and deletes its directory. Errors
// are discarded: the run's verdict has already been decided.
func (s *script) cleanup() {
	_ = s.db.Close()
	if s.dir != "" {
		_ = os.RemoveAll(s.dir)
	}
}

func (s *script) key(i int) string { return string(workload.Key(i)) }

// val derives a value for key i; gen distinguishes successive updates.
func (s *script) val(i, gen int) string {
	return string(workload.Value(i+gen*1_000_000, s.cfg.ValueSize))
}

func (s *script) insert(i, gen int) error {
	k, v := s.key(i), s.val(i, gen)
	s.pending = &op{kind: "insert", key: k, val: v}
	if err := s.db.Insert([]byte(k), []byte(v)); err != nil {
		return fmt.Errorf("insert %s: %w", k, err)
	}
	s.model[k] = v
	s.pending = nil
	return nil
}

func (s *script) update(i, gen int) error {
	k, v := s.key(i), s.val(i, gen)
	s.pending = &op{kind: "update", key: k, val: v}
	if err := s.db.Update([]byte(k), []byte(v)); err != nil {
		return fmt.Errorf("update %s: %w", k, err)
	}
	s.model[k] = v
	s.pending = nil
	return nil
}

func (s *script) delete(i int) error {
	k := s.key(i)
	s.pending = &op{kind: "delete", key: k}
	if err := s.db.Delete([]byte(k)); err != nil {
		return fmt.Errorf("delete %s: %w", k, err)
	}
	delete(s.model, k)
	s.pending = nil
	return nil
}

// run executes the scripted workload: load, sparsify, checkpoint, then
// either the three explicit reorganization passes with update waves
// between them (default) or, with cfg.Daemon, daemon-tick drains in
// place of each pass.
func (s *script) run() error {
	n, every := s.cfg.Records, s.cfg.KeepEvery

	// Sparse load: insert in a stride-permuted order (so page
	// allocation order differs from key order and pass 2 has swapping
	// to do), then delete all but every KeepEvery-th record (the
	// paper's "large numbers of deletions").
	step := 7
	for step%n == 0 || gcd(step, n) != 1 {
		step++
	}
	for i := 0; i < n; i++ {
		if err := s.insert(i*step%n, 0); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if i%every == 0 {
			continue
		}
		if err := s.delete(i); err != nil {
			return err
		}
	}
	if err := s.db.Checkpoint(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}

	if s.cfg.Daemon {
		return s.runDaemon()
	}
	return s.runPasses()
}

// runDaemon is the autonomous-daemon workload shape: each explicit
// pass of runPasses becomes "tick the manual daemon until the policy
// goes idle", with the same update waves in between. The daemon runs
// pass 1 only, so there is no OnEvent hook to ride — the waves apply
// directly, and the drains decide for themselves how many increments
// the tree needs.
func (s *script) runDaemon() error {
	n, every := s.cfg.Records, s.cfg.KeepEvery

	if err := s.daemonDrain("drain1"); err != nil {
		return err
	}

	// Update wave 1: high-key inserts re-grow the tail the sparsify
	// hollowed out; the delete re-opens a hole for the next drain.
	if err := s.update(0, 1); err != nil {
		return err
	}
	for i := n + 11; i < n+11+n/8; i++ {
		if err := s.insert(i, 0); err != nil {
			return err
		}
	}
	if err := s.delete(2 * every); err != nil {
		return err
	}
	if err := s.db.Checkpoint(); err != nil {
		return fmt.Errorf("mid checkpoint: %w", err)
	}
	if err := s.daemonDrain("drain2"); err != nil {
		return err
	}

	// Update wave 2.
	if err := s.update(3*every, 1); err != nil {
		return err
	}
	if err := s.insert(n+3, 0); err != nil {
		return err
	}
	if err := s.delete(4 * every); err != nil {
		return err
	}
	return s.daemonDrain("drain3")
}

// daemonDrain ticks the manual daemon until three consecutive ticks
// run no increment. An armed crash panics out of Tick into the
// caller's fault.Catch like any other scripted operation.
func (s *script) daemonDrain(name string) error {
	idle := 0
	for ticks := 0; idle < 3; ticks++ {
		if ticks > 300 {
			return fmt.Errorf("%s: daemon never went idle within %d ticks", name, ticks)
		}
		d := s.db.Daemon()
		before := d.Metrics().Get(metrics.DaemonIncrements)
		if err := d.Tick(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if d.Metrics().Get(metrics.DaemonIncrements) == before {
			idle++
		} else {
			idle = 0
		}
	}
	return nil
}

// runPasses is the explicit-reorganization workload shape.
func (s *script) runPasses() error {
	n, every := s.cfg.Records, s.cfg.KeepEvery

	// Pass-3 update bursts fire from the reorganizer's event hook.
	// pass3.base: the current base's S lock is already released when the
	// event fires (only the *next*, higher-keyed base is still locked),
	// so updates to the lowest keys cannot block against the
	// reorganizer. pass3.built: every base has been read; updates flow
	// through the side file and exercise catch-up and the final drain.
	var burstBase, burstBuilt bool
	rcfg := repro.DefaultReorgConfig()
	rcfg.OnEvent = func(stage string) error {
		switch stage {
		case "pass3.base":
			if burstBase {
				return nil
			}
			burstBase = true
			// Re-insert sparsified low keys: the compacted first leaf is
			// near the target fill, so these force a leaf split whose
			// new base entry must flow through the side file.
			for _, i := range []int{1, 2, 4, 5} {
				if err := s.insert(i, 0); err != nil {
					return err
				}
			}
			return s.update(0, 2)
		case "pass3.built":
			if burstBuilt {
				return nil
			}
			burstBuilt = true
			// High-key inserts past the last leaf: splits here append
			// side-file entries that only the final drain can apply.
			for i := n + 5; i < n+11; i++ {
				if err := s.insert(i, 0); err != nil {
					return err
				}
			}
			if err := s.delete(6 * every); err != nil {
				return err
			}
			return s.update(9*every, 1)
		}
		return nil
	}
	r := s.db.Reorganizer(rcfg)

	if err := r.CompactLeaves(); err != nil {
		return fmt.Errorf("pass1: %w", err)
	}
	// Update wave 1: between passes the reorganizer holds no locks.
	// The high-key insert burst deliberately consumes the free pages
	// that pass 1 released: the new (high-keyed) leaves land on low
	// page ids, so pass 2 finds leaves out of key order with no free
	// slots below them and must use Swap units, not just Moves.
	if err := s.update(0, 1); err != nil {
		return err
	}
	for i := n + 11; i < n+11+n/8; i++ {
		if err := s.insert(i, 0); err != nil {
			return err
		}
	}
	if err := s.delete(2 * every); err != nil {
		return err
	}
	if err := s.db.Checkpoint(); err != nil {
		return fmt.Errorf("mid checkpoint: %w", err)
	}

	if err := r.SwapLeaves(); err != nil {
		return fmt.Errorf("pass2: %w", err)
	}
	// Update wave 2.
	if err := s.update(3*every, 1); err != nil {
		return err
	}
	if err := s.insert(n+3, 0); err != nil {
		return err
	}
	if err := s.delete(4 * every); err != nil {
		return err
	}

	if err := r.RebuildInternal(); err != nil {
		return fmt.Errorf("pass3: %w", err)
	}
	return nil
}

// verify asserts the recovery invariants against the committed-state
// model after Restart.
func (s *script) verify() error {
	if err := s.db.Check(); err != nil {
		return fmt.Errorf("tree check failed: %w", err)
	}

	got := make(map[string]string)
	var prev []byte
	var orderErr error
	err := s.db.Scan([]byte(""), nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 && orderErr == nil {
			orderErr = fmt.Errorf("scan order violation: %q after %q", k, prev)
		}
		got[string(k)] = string(v)
		prev = append(prev[:0], k...)
		return true
	})
	if err != nil {
		return fmt.Errorf("full scan: %w", err)
	}
	if orderErr != nil {
		return orderErr
	}

	pend := s.pending
	// Committed-data durability: every acknowledged record is readable
	// with exactly its committed value.
	for k, v := range s.model {
		if pend != nil && pend.key == k {
			continue // in flight at the crash: checked below
		}
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("committed key %q lost", k)
		}
		if gv != v {
			return fmt.Errorf("committed key %q: got %q, want %q", k, gv, v)
		}
	}
	// No dirty reads: nothing outside the model (modulo the pending op)
	// may exist.
	for k, gv := range got {
		if _, ok := s.model[k]; ok {
			continue
		}
		if pend != nil && pend.key == k && pend.kind == "insert" {
			if gv != pend.val {
				return fmt.Errorf("pending insert %q: got %q, want %q or absence", k, gv, pend.val)
			}
			continue
		}
		return fmt.Errorf("uncommitted key %q survived the crash", k)
	}
	// Crash atomicity of the operation in flight: fully applied or
	// fully absent, never a mixture.
	if pend != nil {
		gv, present := got[pend.key]
		switch pend.kind {
		case "insert":
			// absence or the new value; both checked above
		case "update":
			old := s.model[pend.key]
			if !present {
				return fmt.Errorf("pending update lost key %q entirely", pend.key)
			}
			if gv != old && gv != pend.val {
				return fmt.Errorf("pending update %q: got %q, want %q or %q",
					pend.key, gv, old, pend.val)
			}
		case "delete":
			if present && gv != s.model[pend.key] {
				return fmt.Errorf("pending delete %q: surviving value %q != committed %q",
					pend.key, gv, s.model[pend.key])
			}
		}
	}

	// Liveness probe: the recovered database accepts new work.
	probeK, probeV := []byte("zz-probe"), []byte("probe-value")
	if err := s.db.Insert(probeK, probeV); err != nil {
		return fmt.Errorf("probe insert: %w", err)
	}
	v, err := s.db.Get(probeK)
	if err != nil || !bytes.Equal(v, probeV) {
		return fmt.Errorf("probe get: %w (val %q)", err, v)
	}
	if err := s.db.Delete(probeK); err != nil {
		return fmt.Errorf("probe delete: %w", err)
	}
	return nil
}

// Enumerate runs the scripted workload once under a tracing injector
// and returns the post-Open hit trace (hit i of the sweep is
// trace[i-1]).
func Enumerate(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	inj := fault.New(cfg.Seed)
	s, err := newScript(cfg, inj)
	if err != nil {
		return nil, err
	}
	defer s.cleanup()
	inj.StartTrace()
	if err := s.run(); err != nil {
		return nil, fmt.Errorf("enumeration run: %w", err)
	}
	trace := inj.StopTrace()
	// The clean run must itself satisfy the invariants.
	if err := s.verify(); err != nil {
		return nil, fmt.Errorf("enumeration run verify: %w", err)
	}
	return trace, nil
}

// Run performs the full sweep and returns its summary. The first
// failing crash index aborts the sweep with a descriptive error.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trace, err := Enumerate(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{TotalHits: len(trace), Points: distinct(trace)}
	if cfg.Logf != nil {
		cfg.Logf("sweep: %d hits across %d fault points", len(trace), len(res.Points))
	}

	for i := 1; i <= len(trace); i += cfg.Stride {
		if cfg.MaxRuns > 0 && res.CrashRuns+res.TornRuns >= cfg.MaxRuns {
			if cfg.Logf != nil {
				cfg.Logf("sweep: stopping at MaxRuns=%d (hit %d/%d)", cfg.MaxRuns, i, len(trace))
			}
			break
		}
		if err := runOne(cfg, i, false, res); err != nil {
			return res, fmt.Errorf("crash at hit %d (%s): %w", i, trace[i-1], err)
		}
		res.CrashRuns++
		if cfg.Torn && trace[i-1] == fault.WALForce {
			if err := runOne(cfg, i, true, res); err != nil {
				return res, fmt.Errorf("torn crash at hit %d (%s): %w", i, trace[i-1], err)
			}
			res.TornRuns++
		}
		if cfg.Logf != nil && res.CrashRuns%100 == 0 {
			cfg.Logf("sweep: %d/%d crash points verified", i, len(trace))
		}
	}
	return res, nil
}

// runOne re-runs the script with a crash armed at the given post-Open
// hit index, then restarts and verifies.
func runOne(cfg Config, hit int, torn bool, res *Result) error {
	inj := fault.New(cfg.Seed)
	s, err := newScript(cfg, inj) // Open runs uninjected (nothing armed)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer func() {
		inj.Disarm() // cleanup's Close must not trip a still-armed crash
		s.cleanup()
	}()
	inj.ArmCrashAtSeq(inj.Seq()+int64(hit), torn)
	crash, err := fault.Catch(s.run)
	if err != nil {
		return fmt.Errorf("script failed before the armed crash: %w", err)
	}
	if crash == nil {
		return fmt.Errorf("script completed without reaching hit %d", hit)
	}
	inj.Disarm() // recovery must not be re-injected
	s.db.Crash()
	info, err := s.db.Restart()
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	if info.UnitCompleted {
		res.ForwardCompleted++
	}
	if info.Pass3Abandoned {
		res.Pass3Abandoned++
	}
	if info.Pass3Completed {
		res.Pass3Completed++
	}
	return s.verify()
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func distinct(trace []string) []string {
	set := make(map[string]struct{})
	for _, p := range trace {
		set[p] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
