package sweep

import (
	"testing"

	"repro/internal/fault"
)

// TestCrashSweep is the E5b acceptance test: enumerate every fault-point
// hit in the scripted workload, crash at each one (every Stride-th in
// -short mode), restart, and verify the recovery invariants.
func TestCrashSweep(t *testing.T) {
	cfg := Config{Torn: true, Logf: t.Logf}
	if testing.Short() {
		cfg.Stride = 7
		cfg.Torn = false
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if res.TotalHits < 100 {
		t.Errorf("enumerated %d fault-point hits, want >= 100", res.TotalHits)
	}
	if res.CrashRuns == 0 {
		t.Error("no crash runs performed")
	}
	t.Logf("sweep: %d hits, %d crash runs, %d torn runs, %d forward-completed units, %d/%d pass3 abandoned/completed",
		res.TotalHits, res.CrashRuns, res.TornRuns, res.ForwardCompleted,
		res.Pass3Abandoned, res.Pass3Completed)

	// The script must exercise every reorganization unit type and the
	// root-switch window, or the sweep is not testing what it claims.
	want := []string{
		fault.DiskRead, fault.DiskWrite, fault.WALAppend, fault.WALForce,
		fault.PagerFlush, fault.PagerEvict,
		"reorg.compact.begin", "reorg.compact.end",
		"reorg.move.begin", "reorg.move.end",
		"reorg.swap.begin", "reorg.swap.logged", "reorg.swap.end",
		"reorg.pass3.base", "reorg.pass3.built", "reorg.pass3.side",
		"reorg.pass3.stable",
		"reorg.pass3.switch.pre", "reorg.pass3.switch.durable",
	}
	have := make(map[string]bool, len(res.Points))
	for _, p := range res.Points {
		have[p] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("fault point %s never hit by the sweep workload", p)
		}
	}
	if !testing.Short() {
		if res.TornRuns == 0 {
			t.Error("no torn-log runs despite Torn: true")
		}
		if res.ForwardCompleted == 0 {
			t.Error("no restart ever forward-completed an in-flight unit")
		}
		if res.Pass3Abandoned == 0 {
			t.Error("no restart ever reclaimed an interrupted pass-3 build")
		}
		if res.Pass3Completed == 0 {
			t.Error("no restart ever finished a durably-switched pass 3")
		}
	}
}

// TestEnumerateDeterministic guards the property the whole sweep rests
// on: the same config yields the identical hit trace every run.
func TestEnumerateDeterministic(t *testing.T) {
	a, err := Enumerate(Config{})
	if err != nil {
		t.Fatalf("first enumeration: %v", err)
	}
	b, err := Enumerate(Config{})
	if err != nil {
		t.Fatalf("second enumeration: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at hit %d: %s vs %s", i+1, a[i], b[i])
		}
	}
}

// TestCrashSweepDaemon sweeps the daemon-driven workload shape: the
// reorganization in flight at every crash is one the autonomous policy
// ordered, and the hit trace must include the daemon's own scheduler
// fault points — crashes there leave the policy mid-decision, and the
// rebuilt daemon after Restart must not matter to recovery.
func TestCrashSweepDaemon(t *testing.T) {
	cfg := Config{Daemon: true, Logf: t.Logf}
	if testing.Short() {
		cfg.Stride = 7
	} else {
		// The daemon shape enumerates more hits than the pass shape
		// (occupancy scans between increments); stride keeps the full
		// run in the same time envelope as the pass-shape sweep.
		cfg.Stride = 3
		cfg.Torn = true
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("daemon sweep failed: %v", err)
	}
	if res.CrashRuns == 0 {
		t.Error("no crash runs performed")
	}
	t.Logf("daemon sweep: %d hits, %d crash runs, %d torn runs, %d forward-completed units",
		res.TotalHits, res.CrashRuns, res.TornRuns, res.ForwardCompleted)

	// The daemon shape must reach its scheduler seams and drive real
	// pass-1 units through them.
	want := []string{
		fault.DaemonTick, fault.DaemonUnitStart,
		"reorg.compact.begin", "reorg.compact.end",
		fault.DiskRead, fault.DiskWrite, fault.WALAppend, fault.WALForce,
	}
	have := make(map[string]bool, len(res.Points))
	for _, p := range res.Points {
		have[p] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("fault point %s never hit by the daemon sweep workload", p)
		}
	}
}

// TestCrashSweepFileBackend runs the same E5b sweep against real files:
// every run gets a fresh directory holding a checksummed page file and
// rotated WAL segments, crashes at its armed hit, and recovers by
// re-scanning the segment directory (torn wal.force runs leave a real
// ragged tail for the scan to truncate). -short bounds the run count;
// the full run covers every hit plus every torn wal.force variant.
func TestCrashSweepFileBackend(t *testing.T) {
	cfg := Config{
		Torn:    true,
		Backend: "file",
		Dir:     t.TempDir(),
		// Rotate aggressively so the sweep crosses segment boundaries
		// (crash-during-rotation coverage comes free with every hit that
		// lands inside a force that rotates).
		WALSegmentBytes: 4096,
		Logf:            t.Logf,
	}
	if testing.Short() {
		cfg.Stride = 11
		cfg.Torn = false
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("file-backend sweep failed: %v", err)
	}
	if res.CrashRuns == 0 {
		t.Error("no crash runs performed")
	}
	t.Logf("file sweep: %d hits, %d crash runs, %d torn runs, %d forward-completed units",
		res.TotalHits, res.CrashRuns, res.TornRuns, res.ForwardCompleted)
	if !testing.Short() && res.TornRuns == 0 {
		t.Error("no torn-log runs despite Torn: true")
	}
}
