package btree

import (
	"errors"
	"fmt"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/pageops"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// freeHint remembers a leaf a transaction emptied; the free-at-empty
// structure modification runs at commit so that an abort can still
// reinsert the records into the page.
type freeHint struct {
	leaf storage.PageID
	key  []byte
}

func (t *Tree) deferFree(owner uint64, leaf storage.PageID, key []byte) {
	t.deferredMu.Lock()
	defer t.deferredMu.Unlock()
	if t.deferredKeys == nil {
		t.deferredKeys = make(map[uint64][]freeHint)
	}
	t.deferredKeys[owner] = append(t.deferredKeys[owner],
		freeHint{leaf: leaf, key: append([]byte(nil), key...)})
}

func (t *Tree) takeDeferred(owner uint64) []freeHint {
	t.deferredMu.Lock()
	defer t.deferredMu.Unlock()
	hints := t.deferredKeys[owner]
	delete(t.deferredKeys, owner)
	return hints
}

// Commit runs the transaction's deferred free-at-empty modifications,
// then commits it. Frees are best effort: a conflict with the
// reorganizer or another transaction simply leaves the empty page for
// the next reorganization pass.
func (t *Tree) Commit(tx *txn.Txn) error {
	for _, h := range t.takeDeferred(tx.ID()) {
		if err := t.freeLeafSMO(tx, h); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// Abort discards deferred frees and rolls the transaction back.
func (t *Tree) Abort(tx *txn.Txn) error {
	t.takeDeferred(tx.ID())
	return tx.Abort()
}

// freeLeafSMO deallocates an empty leaf (free-at-empty [JS93]): it
// X-couples down the tree keeping locks only below the deepest
// "survivor" node that retains at least one other entry, unlinks the
// chain of emptied ancestors in one atomic FreeChain record, and
// rewires the leaf side pointers. Conflicts skip the free silently.
func (t *Tree) freeLeafSMO(tx *txn.Txn, h freeHint) error {
	owner := tx.ID()
	rootID, _ := t.Root()
	if err := t.locks.Lock(owner, pageRes(rootID), lock.X); err != nil {
		if errors.Is(err, lock.ErrDeadlock) {
			return nil
		}
		return err
	}
	type pathNode struct {
		f        *storage.Frame
		routeKey []byte // key of the entry used to descend from this node
	}
	var path []pathNode
	releasePath := func() {
		for _, n := range path {
			t.locks.Unlock(owner, pageRes(n.f.ID()))
			t.pager.Unfix(n.f)
		}
		path = nil
	}
	f, err := t.pager.Fix(rootID)
	if err != nil {
		t.locks.Unlock(owner, pageRes(rootID))
		return err
	}
	if r2, _ := t.Root(); r2 != rootID {
		t.locks.Unlock(owner, pageRes(rootID))
		t.pager.Unfix(f)
		return nil // switched: the new tree was built without the empty page
	}
	path = append(path, pathNode{f: f})

	// Descend to the base page, keeping locks from the deepest node
	// that survives the cascade (>= 2 entries, or the root).
	for {
		cur := &path[len(path)-1]
		cur.f.RLock()
		p := cur.f.Data()
		level := p.Aux()
		child, slot := kv.ChildFor(p, h.key)
		var routeKey []byte
		slots := p.NumSlots()
		if slot >= 0 {
			routeKey = append([]byte(nil), kv.SlotKey(p, slot)...)
		}
		cur.f.RUnlock()
		if child == storage.InvalidPage {
			releasePath()
			return nil
		}
		cur.routeKey = routeKey
		if slots >= 2 && len(path) > 1 {
			// This node survives: ancestors can be released.
			for _, n := range path[:len(path)-1] {
				t.locks.Unlock(owner, pageRes(n.f.ID()))
				t.pager.Unfix(n.f)
			}
			path = path[len(path)-1:]
		}
		if level == 1 {
			break // path ends at the base page
		}
		if err := t.locks.Lock(owner, pageRes(child), lock.X); err != nil {
			releasePath()
			if errors.Is(err, lock.ErrDeadlock) {
				return nil
			}
			return err
		}
		cf, err := t.pager.Fix(child)
		if err != nil {
			t.locks.Unlock(owner, pageRes(child))
			releasePath()
			return err
		}
		path = append(path, pathNode{f: cf})
	}

	base := path[len(path)-1]

	// Re-route to the leaf under the held base X lock.
	base.f.RLock()
	child, slot := kv.ChildFor(base.f.Data(), h.key)
	baseSlots := base.f.Data().NumSlots()
	var leafEntryKey []byte
	if slot >= 0 {
		leafEntryKey = append([]byte(nil), kv.SlotKey(base.f.Data(), slot)...)
	}
	base.f.RUnlock()
	path[len(path)-1].routeKey = leafEntryKey
	if child != h.leaf {
		releasePath()
		return nil // the leaf moved or was already freed
	}
	// The survivor must keep at least one entry after the cascade; a
	// survivor with fewer than 2 entries can only be the root (keep the
	// last leaf rather than emptying the root).
	survivorSlots := baseSlots
	if len(path) > 1 {
		path[0].f.RLock()
		survivorSlots = path[0].f.Data().NumSlots()
		path[0].f.RUnlock()
	}
	if survivorSlots < 2 {
		releasePath()
		return nil
	}

	lockErr := t.locks.LockOpts(owner, pageRes(child), lock.X,
		lock.Opt{ForgoOnRX: true})
	if lockErr != nil {
		releasePath()
		if errors.Is(lockErr, lock.ErrReorgConflict) || errors.Is(lockErr, lock.ErrDeadlock) {
			return nil // the reorganizer will compact it instead
		}
		return lockErr
	}
	leaf, err := t.pager.Fix(child)
	if err != nil {
		t.locks.Unlock(owner, pageRes(child))
		releasePath()
		return err
	}
	leaf.RLock()
	empty := leaf.Data().NumSlots() == 0
	prev, next := leaf.Data().Prev(), leaf.Data().Next()
	leaf.RUnlock()
	if !empty {
		t.locks.Unlock(owner, pageRes(child))
		t.pager.Unfix(leaf)
		releasePath()
		return nil
	}

	// Lock the side-pointer neighbours; give up on any conflict.
	var neighbours []storage.PageID
	for _, nb := range []storage.PageID{prev, next} {
		if nb == storage.InvalidPage {
			continue
		}
		if err := t.locks.LockOpts(owner, pageRes(nb), lock.X,
			lock.Opt{ForgoOnRX: true}); err != nil {
			for _, got := range neighbours {
				t.locks.Unlock(owner, pageRes(got))
			}
			t.locks.Unlock(owner, pageRes(child))
			t.pager.Unfix(leaf)
			releasePath()
			if errors.Is(err, lock.ErrReorgConflict) || errors.Is(err, lock.ErrDeadlock) {
				return nil
			}
			return err
		}
		neighbours = append(neighbours, nb)
	}

	// Mirror the base-page entry removal into the side file when
	// internal-page reorganization is running (§7.2).
	baseID := base.f.ID()
	var hookRelease func()
	if h2 := t.reorgHook(); h2 != nil {
		hookOp := wal.Update{Page: baseID, Op: wal.OpDelete, Key: leafEntryKey}
		rel, err := h2.OnBaseUpdate(owner, hookOp)
		if err != nil {
			for _, got := range neighbours {
				t.locks.Unlock(owner, pageRes(got))
			}
			t.locks.Unlock(owner, pageRes(child))
			t.pager.Unfix(leaf)
			releasePath()
			if errors.Is(err, ErrSwitched) {
				return nil // new tree was built from post-free state
			}
			return err
		}
		hookRelease = rel
	}

	// Build the atomic free-chain record: survivor loses its entry,
	// everything below it plus the leaf is deallocated.
	survivor := path[0]
	dealloc := make([]storage.PageID, 0, len(path))
	for _, n := range path[1:] {
		dealloc = append(dealloc, n.f.ID())
	}
	dealloc = append(dealloc, child)
	fc := wal.FreeChain{
		Survivor: survivor.f.ID(),
		EntryKey: survivor.routeKey,
		Dealloc:  dealloc,
		Leaf:     child,
		PrevLeaf: prev,
		NextLeaf: next,
	}
	// Unpin before applying (deallocation requires unpinned frames);
	// the X locks keep everyone else out.
	t.pager.Unfix(leaf)
	for _, n := range path {
		t.pager.Unfix(n.f)
	}
	lsn := t.log.Append(fc)
	err = pageops.ApplyFreeChain(t.pager, fc, lsn)
	if hookRelease != nil {
		hookRelease()
	}
	for _, got := range neighbours {
		t.locks.Unlock(owner, pageRes(got))
	}
	t.locks.Unlock(owner, pageRes(child))
	for _, n := range path {
		t.locks.Unlock(owner, pageRes(n.f.ID()))
	}
	if err != nil {
		return fmt.Errorf("btree: free-at-empty of leaf %d: %w", child, err)
	}
	if t.ring != nil {
		t.ring.Emit(obs.EvLeafFree, uint64(child), 0)
	}
	return nil
}
