package btree

import (
	"errors"
	"fmt"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/pageops"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// errRetryDescent tells modify to restart its descent (the forgo
// protocol waited out a reorganization unit, or the tree switched).
var errRetryDescent = errors.New("btree: retry descent")

// maxIndexEntry is the largest index cell (key + child + slot
// bookkeeping) a node must be able to absorb to be considered safe.
const maxIndexEntry = 2 + kv.MaxKeySize + 4 + storage.SlotSize

// nodeFull reports whether an internal node cannot take one more
// maximum-size entry (the Bayer–Schkolnick "unsafe node" test; the
// descent splits unsafe nodes preemptively so parents always have
// room).
func nodeFull(p storage.Page) bool {
	return p.FreeSpace() < maxIndexEntry
}

// insertSMO is the structure-modification path of the updater protocol
// (§4.1.3): X lock-coupling from the root, splitting unsafe nodes
// top-down, then the leaf operation. The caller retries on
// errRetryDescent.
func (t *Tree) insertSMO(tx *txn.Txn, u wal.Update) error {
	owner := tx.ID()
	rootID, _ := t.Root()
	if err := t.locks.Lock(owner, pageRes(rootID), lock.X); err != nil {
		return err
	}
	f, err := t.pager.Fix(rootID)
	if err != nil {
		t.locks.Unlock(owner, pageRes(rootID))
		return err
	}
	if rootID2, _ := t.Root(); rootID2 != rootID {
		// Switched between snapshot and lock grant.
		t.locks.Unlock(owner, pageRes(rootID))
		t.pager.Unfix(f)
		return errRetryDescent
	}

	release := func(frames ...*storage.Frame) {
		for _, fr := range frames {
			if fr != nil {
				t.locks.Unlock(owner, pageRes(fr.ID()))
				t.pager.Unfix(fr)
			}
		}
	}

	// Root pre-split keeps the invariant that every parent we use for a
	// child split has room.
	f.RLock()
	rootFull := nodeFull(f.Data())
	f.RUnlock()
	if rootFull {
		if err := t.splitRoot(f); err != nil {
			release(f)
			return err
		}
	}

	for {
		f.RLock()
		p := f.Data()
		level := p.Aux()
		child, _ := kv.ChildFor(p, u.Key)
		f.RUnlock()
		if child == storage.InvalidPage {
			release(f)
			return fmt.Errorf("btree: internal page %d empty during SMO", f.ID())
		}
		if level == 1 {
			// f is the base page; child is the leaf.
			lockErr := t.locks.LockOpts(owner, pageRes(child), lock.X, lock.Opt{ForgoOnRX: true})
			if errors.Is(lockErr, lock.ErrReorgConflict) {
				baseID := f.ID()
				release(f)
				if err := t.locks.LockInstant(owner, pageRes(baseID), lock.RS); err != nil {
					return err
				}
				return errRetryDescent
			}
			if lockErr != nil {
				release(f)
				return lockErr
			}
			leaf, err := t.pager.Fix(child)
			if err != nil {
				t.locks.Unlock(owner, pageRes(child))
				release(f)
				return err
			}
			if err := t.locks.Lock(owner, recordRes(u.Key), lock.X); err != nil {
				release(f, leaf)
				return err
			}
			u.Page = leaf.ID()
			aerr := t.applyLogged(tx, leaf, u)
			if errors.Is(aerr, storage.ErrPageFull) {
				target, serr := t.splitChild(tx, f, leaf, u.Key)
				if serr != nil {
					t.locks.Unlock(owner, pageRes(child))
					t.pager.Unfix(leaf)
					release(f)
					if errors.Is(serr, errRetryDescent) {
						return errRetryDescent
					}
					return serr
				}
				leaf = target
				u.Page = leaf.ID()
				aerr = t.applyLogged(tx, leaf, u)
			}
			t.locks.Unlock(owner, pageRes(f.ID()))
			t.pager.Unfix(f)
			// Downgrade the leaf to IX (held to end of transaction) per
			// the record-locking protocol.
			t.locks.Downgrade(owner, pageRes(leaf.ID()), lock.IX)
			t.pager.Unfix(leaf)
			return aerr
		}
		// Interior descent: X-couple, pre-splitting full children.
		if err := t.locks.Lock(owner, pageRes(child), lock.X); err != nil {
			release(f)
			return err
		}
		cf, err := t.pager.Fix(child)
		if err != nil {
			t.locks.Unlock(owner, pageRes(child))
			release(f)
			return err
		}
		cf.RLock()
		childFull := nodeFull(cf.Data())
		cf.RUnlock()
		if childFull {
			target, serr := t.splitChild(tx, f, cf, u.Key)
			if serr != nil {
				t.locks.Unlock(owner, pageRes(child))
				t.pager.Unfix(cf)
				release(f)
				if errors.Is(serr, errRetryDescent) {
					return errRetryDescent
				}
				return serr
			}
			cf = target
		}
		t.locks.Unlock(owner, pageRes(f.ID()))
		t.pager.Unfix(f)
		f = cf
	}
}

// splitChild splits child (leaf or internal) at its midpoint, posting
// the separator into parent, which the caller guarantees has room. Both
// frames arrive X-locked and pinned. On success the half covering key
// is returned X-locked and pinned; the other half is released. The
// split is logged as one atomic wal.Split record.
func (t *Tree) splitChild(tx *txn.Txn, parent, child *storage.Frame, key []byte) (*storage.Frame, error) {
	owner := tx.ID()

	child.RLock()
	cp := child.Data()
	n := cp.NumSlots()
	level := cp.Aux()
	isLeaf := cp.Type() == storage.PageLeaf
	if n < 2 {
		child.RUnlock()
		return nil, fmt.Errorf("btree: cannot split page %d with %d cells", child.ID(), n)
	}
	mid := n / 2
	// For leaf splits the posted separator only needs to route: anything
	// in (left's last key, right's first key] works, and both boundary
	// keys are on the page, so store the shortest such prefix. Internal
	// entries carry subtree low bounds — the left subtree's keys extend
	// up to the right entry's exact key, so internal splits must post it
	// untruncated (it is itself a separator born at a leaf split).
	var sep []byte
	if isLeaf {
		sep = kv.Separator(kv.SlotKey(cp, mid-1), kv.SlotKey(cp, mid))
	} else {
		sep = append([]byte(nil), kv.SlotKey(cp, mid)...)
	}
	moved := make([][]byte, 0, n-mid)
	for i := mid; i < n; i++ {
		moved = append(moved, append([]byte(nil), cp.Cell(i)...))
	}
	oldNext := cp.Next()
	child.RUnlock()

	pageType := storage.PageLeaf
	if !isLeaf {
		pageType = storage.PageInternal
	}
	right, err := t.pager.Allocate(pageType)
	if err != nil {
		return nil, err
	}
	rightID := right.ID()
	if err := t.locks.Lock(owner, pageRes(rightID), lock.X); err != nil {
		t.pager.Unfix(right)
		return nil, err
	}
	cleanupRight := func() {
		t.locks.Unlock(owner, pageRes(rightID))
		t.pager.Unfix(right)
		_ = t.pager.Deallocate(rightID, 0)
	}

	// Lock the old right neighbour (its Prev pointer changes).
	var nextFrame *storage.Frame
	if isLeaf && oldNext != storage.InvalidPage {
		if err := t.locks.Lock(owner, pageRes(oldNext), lock.X); err != nil {
			cleanupRight()
			return nil, err
		}
		nextFrame, err = t.pager.Fix(oldNext)
		if err != nil {
			t.locks.Unlock(owner, pageRes(oldNext))
			cleanupRight()
			return nil, err
		}
	}
	releaseNext := func() {
		if nextFrame != nil {
			t.locks.Unlock(owner, pageRes(oldNext))
			t.pager.Unfix(nextFrame)
		}
	}

	// Base-page updates consult the reorganization hook (§7.2) before
	// being carried out: during internal-page reorganization the new
	// entry may also need to reach the side file.
	// After free-at-empty, the left child's routing entry key in the
	// parent may sit above its actual low mark (keys arrived through the
	// leftmost-child rule); the posted separator would then break the
	// parent's entry ordering. Lower the entry to the child's true low
	// mark as part of the split.
	var baseOldKey, baseNewKey []byte
	child.RLock()
	leftLow := append([]byte(nil), kv.SlotKey(child.Data(), 0)...)
	child.RUnlock()
	parent.RLock()
	parentLevel := parent.Data().Aux()
	for i := 0; i < parent.Data().NumSlots(); i++ {
		k, c := kv.DecodeIndexCell(parent.Data().Cell(i))
		if c == child.ID() {
			if kv.Compare(k, leftLow) > 0 {
				baseOldKey = append([]byte(nil), k...)
				baseNewKey = leftLow
			}
			break
		}
	}
	parent.RUnlock()

	var hookReleases []func()
	hookRelease := func() {
		for _, r := range hookReleases {
			r()
		}
	}
	if parentLevel == 1 {
		if h := t.reorgHook(); h != nil {
			ops := []wal.Update{{Page: parent.ID(), Op: wal.OpInsert,
				Key: sep, NewVal: pageops.EncodeChild(rightID)}}
			if baseOldKey != nil {
				ops = append(ops,
					wal.Update{Page: parent.ID(), Op: wal.OpDelete, Key: baseOldKey},
					wal.Update{Page: parent.ID(), Op: wal.OpInsert,
						Key: baseNewKey, NewVal: pageops.EncodeChild(child.ID())})
			}
			for _, hookOp := range ops {
				rel, err := h.OnBaseUpdate(owner, hookOp)
				if err != nil {
					hookRelease()
					releaseNext()
					cleanupRight()
					return nil, err
				}
				if rel != nil {
					hookReleases = append(hookReleases, rel)
				}
			}
		}
	}

	s := wal.Split{
		Left:       child.ID(),
		Right:      rightID,
		Level:      level,
		Sep:        sep,
		Moved:      moved,
		RightNext:  oldNext,
		NextPage:   oldNext,
		Base:       parent.ID(),
		BaseOldKey: baseOldKey,
		BaseNewKey: baseNewKey,
	}
	if !isLeaf {
		s.RightNext, s.NextPage = storage.InvalidPage, storage.InvalidPage
	}
	lsn := t.log.Append(s)
	err = pageops.ApplySplit(t.pager, s, lsn)
	hookRelease()
	if err != nil {
		releaseNext()
		cleanupRight()
		return nil, fmt.Errorf("btree: apply split of %d: %w", child.ID(), err)
	}
	if isLeaf && t.ring != nil {
		t.ring.Emit(obs.EvLeafSplit, uint64(child.ID()), uint64(rightID))
	}
	releaseNext()

	// Hand back the half that covers key.
	if kv.Compare(key, sep) >= 0 {
		t.locks.Unlock(owner, pageRes(child.ID()))
		t.pager.Unfix(child)
		return right, nil
	}
	t.locks.Unlock(owner, pageRes(rightID))
	t.pager.Unfix(right)
	return child, nil
}

// splitRoot grows the tree by one level while keeping the root page id
// (so the anchor only changes at the pass-3 switch). The caller holds X
// on the root.
func (t *Tree) splitRoot(root *storage.Frame) error {
	root.RLock()
	p := root.Data()
	n := p.NumSlots()
	level := p.Aux()
	if n < 2 {
		root.RUnlock()
		return fmt.Errorf("btree: cannot split root with %d cells", n)
	}
	mid := n / 2
	// The root is internal: its entry keys are subtree low bounds, so
	// the middle key moves up untruncated (see splitChild).
	sep := append([]byte(nil), kv.SlotKey(p, mid)...)
	low := make([][]byte, 0, mid)
	hi := make([][]byte, 0, n-mid)
	for i := 0; i < mid; i++ {
		low = append(low, append([]byte(nil), p.Cell(i)...))
	}
	for i := mid; i < n; i++ {
		hi = append(hi, append([]byte(nil), p.Cell(i)...))
	}
	root.RUnlock()

	lowF, err := t.pager.Allocate(storage.PageInternal)
	if err != nil {
		return err
	}
	hiF, err := t.pager.Allocate(storage.PageInternal)
	if err != nil {
		t.pager.Unfix(lowF)
		return err
	}
	s := wal.RootSplit{Root: root.ID(), Low: lowF.ID(), High: hiF.ID(),
		Level: level, Sep: sep, LowCells: low, HiCells: hi}
	lsn := t.log.Append(s)
	err = pageops.ApplyRootSplit(t.pager, s, lsn)
	t.pager.Unfix(lowF)
	t.pager.Unfix(hiF)
	if err != nil {
		return fmt.Errorf("btree: apply root split: %w", err)
	}
	return nil
}
