package btree

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kv"
	"repro/internal/lock"
)

// TestUpdateGrowingValueAcrossSplit: replacing a value with a much
// larger one on a full page must escalate to the split path and keep
// every record.
func TestUpdateGrowingValueAcrossSplit(t *testing.T) {
	e := newEnv(t, 1024)
	for i := 0; i < 200; i++ {
		e.put(t, i)
	}
	big := bytes.Repeat([]byte{'G'}, 150)
	for i := 0; i < 200; i += 3 {
		tx := e.txns.Begin()
		if err := e.tree.Update(tx, key(i), big); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
		if err := e.tree.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, ok := e.get(t, i)
		if !ok {
			t.Fatalf("record %d lost", i)
		}
		if i%3 == 0 {
			if !bytes.Equal(v, big) {
				t.Fatalf("record %d not grown", i)
			}
		} else if !bytes.Equal(v, val(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

// TestEmptyTreeOperations: lookups, scans and deletes on a fresh tree.
func TestEmptyTreeOperations(t *testing.T) {
	e := newEnv(t, 512)
	if _, ok := e.get(t, 1); ok {
		t.Error("found record in empty tree")
	}
	tx := e.txns.Begin()
	if err := e.tree.Delete(tx, key(1)); !errors.Is(err, kv.ErrNotFound) {
		t.Errorf("delete on empty tree: %v", err)
	}
	n, err := e.tree.Count(tx, nil, nil)
	if err != nil || n != 0 {
		t.Errorf("count = %d, %v", n, err)
	}
	if err := e.tree.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestScanWithNilBounds covers open-ended scans in both directions.
func TestScanWithNilBounds(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 50; i++ {
		e.put(t, i)
	}
	tx := e.txns.Begin()
	defer func() { _ = e.tree.Commit(tx) }()
	n, err := e.tree.Count(tx, nil, nil)
	if err != nil || n != 50 {
		t.Fatalf("full count = %d, %v", n, err)
	}
	n, err = e.tree.Count(tx, nil, key(24))
	if err != nil || n != 25 {
		t.Fatalf("half count = %d, %v", n, err)
	}
}

// TestRepeatedDeleteInsertCycles stresses free-at-empty and page reuse.
func TestRepeatedDeleteInsertCycles(t *testing.T) {
	e := newEnv(t, 512)
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 300; i++ {
			e.put(t, i)
		}
		if err := e.tree.Check(); err != nil {
			t.Fatalf("cycle %d after inserts: %v", cycle, err)
		}
		for i := 0; i < 300; i++ {
			e.del(t, i)
		}
		if err := e.tree.Check(); err != nil {
			t.Fatalf("cycle %d after deletes: %v", cycle, err)
		}
		s, _ := e.tree.GatherStats()
		if s.Records != 0 {
			t.Fatalf("cycle %d left %d records", cycle, s.Records)
		}
	}
	// Page reuse should keep the disk extent bounded.
	if hw := e.pager.FreeMap().HighWater(); hw > 200 {
		t.Errorf("high water %d after 5 cycles: pages are leaking", hw)
	}
}

// TestGetNextBaseAfterAllKeys: NextBase walks every base exactly once
// and returns nil past the last one.
func TestGetNextBaseAfterAllKeys(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 400; i++ {
		e.put(t, i)
	}
	owner := e.txns.NextOwnerID()
	base, err := e.tree.FirstBase(owner, lock.S)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for base != nil {
		base.RLock()
		lowMark := append([]byte(nil), kv.SlotKey(base.Data(), 0)...)
		base.RUnlock()
		e.tree.ReleaseBase(owner, base)
		base, err = e.tree.NextBase(owner, lowMark, lock.S)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 1000 {
			t.Fatal("NextBase did not terminate")
		}
	}
	if steps < 2 {
		t.Skip("tree too small for multiple bases")
	}
}
