package btree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

type env struct {
	disk  *storage.MemDisk
	pager *storage.Pager
	log   *wal.Log
	locks *lock.Manager
	txns  *txn.Manager
	tree  *Tree
}

func newEnv(t testing.TB, pageSize int) *env {
	t.Helper()
	e := &env{}
	e.log = wal.NewLog()
	e.disk = storage.NewDisk(pageSize)
	e.pager = storage.NewPager(e.disk, 0, e.log)
	e.locks = lock.NewManager()
	e.txns = txn.NewManager(e.log, e.locks, e.pager)
	tree, err := Create(e.pager, e.log, e.locks, e.txns)
	if err != nil {
		t.Fatal(err)
	}
	e.tree = tree
	return e
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

// put inserts in its own committed transaction.
func (e *env) put(t testing.TB, i int) {
	t.Helper()
	tx := e.txns.Begin()
	if err := e.tree.Insert(tx, key(i), val(i)); err != nil {
		t.Fatalf("insert %d: %v", i, err)
	}
	if err := e.tree.Commit(tx); err != nil {
		t.Fatal(err)
	}
}

func (e *env) del(t testing.TB, i int) {
	t.Helper()
	tx := e.txns.Begin()
	if err := e.tree.Delete(tx, key(i)); err != nil {
		t.Fatalf("delete %d: %v", i, err)
	}
	if err := e.tree.Commit(tx); err != nil {
		t.Fatal(err)
	}
}

func (e *env) get(t testing.TB, i int) ([]byte, bool) {
	t.Helper()
	tx := e.txns.Begin()
	v, ok, err := e.tree.Get(tx, key(i))
	if err != nil {
		t.Fatalf("get %d: %v", i, err)
	}
	if err := e.tree.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return v, ok
}

func TestCreateAndOpen(t *testing.T) {
	e := newEnv(t, 512)
	h, err := e.tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Errorf("new tree height = %d, want 2", h)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
	// Reopen from the anchor.
	t2, err := Open(e.pager, e.log, e.locks, e.txns)
	if err != nil {
		t.Fatal(err)
	}
	r1, e1 := e.tree.Root()
	r2, e2 := t2.Root()
	if r1 != r2 || e1 != e2 {
		t.Errorf("reopened root/epoch %d/%d != %d/%d", r2, e2, r1, e1)
	}
}

func TestInsertGetSingle(t *testing.T) {
	e := newEnv(t, 512)
	e.put(t, 1)
	v, ok := e.get(t, 1)
	if !ok || string(v) != string(val(1)) {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if _, ok := e.get(t, 2); ok {
		t.Error("found missing key")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	e := newEnv(t, 512)
	e.put(t, 1)
	tx := e.txns.Begin()
	err := e.tree.Insert(tx, key(1), val(1))
	if err == nil || !errors.Is(err, kv.ErrExists) {
		t.Fatalf("duplicate insert err = %v", err)
	}
	if err := e.tree.Abort(tx); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRecord(t *testing.T) {
	e := newEnv(t, 512)
	tx := e.txns.Begin()
	if err := e.tree.Insert(tx, nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := e.tree.Insert(tx, make([]byte, 100), []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
	if err := e.tree.Insert(tx, []byte("k"), make([]byte, 4096)); err == nil {
		t.Error("oversized value accepted")
	}
	_ = e.tree.Abort(tx)
}

func TestManyInsertsSplitAndCheck(t *testing.T) {
	e := newEnv(t, 512) // small pages force splits and height growth
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		e.put(t, i)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
	h, _ := e.tree.Height()
	if h < 3 {
		t.Errorf("height = %d after %d inserts on 512B pages, expected >= 3", h, n)
	}
	for i := 0; i < n; i++ {
		v, ok := e.get(t, i)
		if !ok || string(v) != string(val(i)) {
			t.Fatalf("get %d = %q, %v", i, v, ok)
		}
	}
	// Key order via CollectAll.
	keys, _, err := e.tree.CollectAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("collected %d records, want %d", len(keys), n)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool {
		return kv.Compare(keys[i], keys[j]) < 0
	}) {
		t.Error("records not in key order")
	}
}

func TestUpdateReplacesValue(t *testing.T) {
	e := newEnv(t, 512)
	e.put(t, 7)
	tx := e.txns.Begin()
	if err := e.tree.Update(tx, key(7), []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := e.tree.Commit(tx); err != nil {
		t.Fatal(err)
	}
	v, ok := e.get(t, 7)
	if !ok || string(v) != "new-value" {
		t.Fatalf("after update: %q, %v", v, ok)
	}
	// Updating a missing key fails.
	tx2 := e.txns.Begin()
	if err := e.tree.Update(tx2, key(99), []byte("x")); err == nil {
		t.Error("update of missing key succeeded")
	}
	_ = e.tree.Abort(tx2)
}

func TestDeleteAndFreeAtEmpty(t *testing.T) {
	e := newEnv(t, 512)
	const n = 500
	for i := 0; i < n; i++ {
		e.put(t, i)
	}
	before, err := e.tree.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	// Delete everything except every 50th record: many leaves empty out
	// and must be deallocated at commit (free-at-empty).
	for i := 0; i < n; i++ {
		if i%50 == 0 {
			continue
		}
		e.del(t, i)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
	after, err := e.tree.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.LeafPages >= before.LeafPages {
		t.Errorf("free-at-empty did not shrink leaves: %d -> %d",
			before.LeafPages, after.LeafPages)
	}
	if after.Records != n/50 {
		t.Errorf("records = %d, want %d", after.Records, n/50)
	}
	for i := 0; i < n; i++ {
		_, ok := e.get(t, i)
		if want := i%50 == 0; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
}

func TestDeleteEverythingKeepsTreeUsable(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 200; i++ {
		e.put(t, i)
	}
	for i := 0; i < 200; i++ {
		e.del(t, i)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
	s, _ := e.tree.GatherStats()
	if s.Records != 0 {
		t.Errorf("records = %d, want 0", s.Records)
	}
	if s.LeafPages < 1 {
		t.Error("tree lost its last leaf")
	}
	// Still usable.
	e.put(t, 42)
	if _, ok := e.get(t, 42); !ok {
		t.Error("insert after total deletion failed")
	}
}

func TestAbortRollsBackInserts(t *testing.T) {
	e := newEnv(t, 512)
	e.put(t, 1)
	tx := e.txns.Begin()
	for i := 10; i < 20; i++ {
		if err := e.tree.Insert(tx, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.tree.Abort(tx); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if _, ok := e.get(t, i); ok {
			t.Fatalf("aborted insert %d visible", i)
		}
	}
	if _, ok := e.get(t, 1); !ok {
		t.Error("committed record lost by abort")
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortAfterDeleteRestoresRecordAndSkipsFree(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 30; i++ {
		e.put(t, i)
	}
	tx := e.txns.Begin()
	for i := 0; i < 30; i++ {
		if err := e.tree.Delete(tx, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.tree.Abort(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, ok := e.get(t, i); !ok {
			t.Fatalf("record %d lost after aborted delete", i)
		}
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 300; i++ {
		e.put(t, i)
	}
	tx := e.txns.Begin()
	var got []string
	err := e.tree.Scan(tx, key(100), key(199), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.tree.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d records, want 100", len(got))
	}
	for i, k := range got {
		if k != string(key(100+i)) {
			t.Fatalf("scan[%d] = %q, want %q", i, k, key(100+i))
		}
	}
}

func TestScanEarlyStopAndUnbounded(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 100; i++ {
		e.put(t, i)
	}
	tx := e.txns.Begin()
	n := 0
	if err := e.tree.Scan(tx, key(0), nil, func(k, v []byte) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop after %d records, want 10", n)
	}
	total, err := e.tree.Count(tx, []byte(" "), nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Errorf("unbounded count = %d, want 100", total)
	}
	_ = e.tree.Commit(tx)
}

func TestScanEmptyRange(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 10; i++ {
		e.put(t, i)
	}
	tx := e.txns.Begin()
	n, err := e.tree.Count(tx, []byte("zzz"), []byte("zzzz"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("count = %d, want 0", n)
	}
	_ = e.tree.Commit(tx)
}

// TestConcurrentMixedWorkload hammers the tree from many goroutines and
// then verifies invariants and record-level consistency.
func TestConcurrentMixedWorkload(t *testing.T) {
	e := newEnv(t, 1024)
	const (
		writers = 8
		perW    = 150
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				id := w*perW + i
				tx := e.txns.Begin()
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					err = e.tree.Insert(tx, key(id), val(id))
				case 6, 7:
					_, _, err = e.tree.Get(tx, key(rng.Intn(writers*perW)))
				case 8:
					err = e.tree.Delete(tx, key(rng.Intn(id+1)))
					if err != nil && errors.Is(err, kv.ErrNotFound) {
						err = nil
					}
				case 9:
					err = e.tree.Scan(tx, key(rng.Intn(writers*perW)), nil,
						func(_, _ []byte) bool { return rng.Intn(20) != 0 })
				}
				if err != nil && !errors.Is(err, kv.ErrExists) &&
					!errors.Is(err, lock.ErrDeadlock) {
					errCh <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					_ = e.tree.Abort(tx)
					return
				}
				if err != nil {
					_ = e.tree.Abort(tx)
				} else if cerr := e.tree.Commit(tx); cerr != nil {
					errCh <- cerr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReflectSparseness(t *testing.T) {
	e := newEnv(t, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		e.put(t, i)
	}
	full, err := e.tree.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	// Delete 3 of every 4 records without emptying pages completely.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			e.del(t, i)
		}
	}
	sparse, err := e.tree.GatherStats()
	if err != nil {
		t.Fatal(err)
	}
	if sparse.AvgLeafFill >= full.AvgLeafFill {
		t.Errorf("fill should drop: %.2f -> %.2f", full.AvgLeafFill, sparse.AvgLeafFill)
	}
	if sparse.Records != n/4 {
		t.Errorf("records = %d, want %d", sparse.Records, n/4)
	}
}

func TestGetNextBaseIteration(t *testing.T) {
	e := newEnv(t, 512)
	for i := 0; i < 800; i++ {
		e.put(t, i)
	}
	// Iterate base pages left to right with FirstBase/NextBase (the
	// paper's Get_Next) and verify full coverage.
	owner := e.txns.NextOwnerID()
	seen := map[storage.PageID]bool{}
	base, err := e.tree.FirstBase(owner, lock.S)
	if err != nil {
		t.Fatal(err)
	}
	var lowMarks []string
	for base != nil {
		id := base.ID()
		if seen[id] {
			t.Fatalf("base %d visited twice", id)
		}
		seen[id] = true
		base.RLock()
		lm := append([]byte(nil), kv.SlotKey(base.Data(), 0)...)
		base.RUnlock()
		lowMarks = append(lowMarks, string(lm))
		e.tree.ReleaseBase(owner, base)
		base, err = e.tree.NextBase(owner, lm, lock.S)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sort.StringsAreSorted(lowMarks) {
		t.Error("base low marks not visited in ascending order")
	}
	s, _ := e.tree.GatherStats()
	// Every leaf hangs under exactly one base page; the number of base
	// pages must match what we visited.
	baseCount := 0
	rootID, _ := e.tree.Root()
	var walk func(id storage.PageID)
	walk = func(id storage.PageID) {
		f, _ := e.pager.Fix(id)
		p := f.Data()
		if p.Type() == storage.PageInternal && p.Aux() == 1 {
			baseCount++
			e.pager.Unfix(f)
			return
		}
		var children []storage.PageID
		for i := 0; i < p.NumSlots(); i++ {
			_, c := kv.DecodeIndexCell(p.Cell(i))
			children = append(children, c)
		}
		e.pager.Unfix(f)
		for _, c := range children {
			walk(c)
		}
	}
	walk(rootID)
	if len(seen) != baseCount {
		t.Errorf("visited %d base pages, tree has %d (leaves=%d)", len(seen), baseCount, s.LeafPages)
	}
}

func TestHeightGrowthKeepsRootID(t *testing.T) {
	e := newEnv(t, 512)
	r0, _ := e.tree.Root()
	for i := 0; i < 3000; i++ {
		e.put(t, i)
	}
	r1, _ := e.tree.Root()
	if r0 != r1 {
		t.Errorf("root moved %d -> %d; splits must keep the root id", r0, r1)
	}
	h, _ := e.tree.Height()
	if h < 4 {
		t.Errorf("height = %d, want >= 4", h)
	}
	if err := e.tree.Check(); err != nil {
		t.Fatal(err)
	}
}
