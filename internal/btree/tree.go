// Package btree implements the concurrent primary-index B+-tree the
// paper reorganizes: leaf pages hold the data records, internal nodes
// are (low key, child) pairs ("an internal node with n keys has n
// children", §2), leaves carry two-way side pointers, and the
// free-at-empty policy [JS93] is used — sparse pages are never
// consolidated, empty leaves are deallocated at commit.
//
// Concurrency follows §4 of the paper: readers and updaters lock-couple
// down the tree with S locks, take S/X (or IS/IX plus record locks) on
// leaves, forgo requests that conflict with the reorganizer's RX locks
// and wait via instant-duration RS requests on the parent base page.
// Structure modifications (splits, free-at-empty) are system actions
// logged with transaction id 0 and never undone.
package btree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/pageops"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// AnchorPage is the fixed location of the database anchor ("a special
// place on the disk", §7.4) holding the root pointer, the tree-lock
// epoch, the reorganization bit, and the side-file head.
const AnchorPage storage.PageID = 1

// Anchor field offsets within the page, after the common header.
const (
	anchorRoot     = storage.HeaderSize + 0  // u32 root page id
	anchorEpoch    = storage.HeaderSize + 4  // u64 tree lock epoch
	anchorReorgBit = storage.HeaderSize + 12 // u8 internal-reorg bit
	anchorSideFile = storage.HeaderSize + 13 // u32 side-file head page
)

// ReorgHook lets the reorganizer intercept base-page updates during
// internal-page reorganization (§7.2): an updater holding X on a base
// page consults the hook, which mirrors the change into the side file
// when the reorganizer has already read past its key.
type ReorgHook interface {
	// OnBaseUpdate is called with the base-page entry operation about
	// to be applied to the old tree. When the operation must also reach
	// the side file, the hook appends it there under an IX table lock
	// and returns a non-nil release function the caller invokes after
	// applying the base change (so the table lock spans both).
	// Returning ErrSwitched means the tree switch completed while the
	// updater waited: the caller must restart against the new tree.
	OnBaseUpdate(ownerID uint64, op wal.Update) (release func(), err error)
}

// ErrSwitched tells an updater the root switch happened underneath it.
var ErrSwitched = fmt.Errorf("btree: tree switched during update")

// ErrTreeEmpty is returned by lookups on a tree with no records.
var ErrTreeEmpty = fmt.Errorf("btree: tree is empty")

// rootRef is one consistent (root, epoch) snapshot, published through
// Tree.rootSnap.
type rootRef struct {
	root  storage.PageID
	epoch uint64
}

// Tree is the primary-index B+-tree.
type Tree struct {
	pager *storage.Pager
	log   *wal.Log
	locks *lock.Manager
	txns  *txn.Manager

	mu       sync.Mutex
	root     storage.PageID
	epoch    uint64
	reorgBit bool
	sideFile storage.PageID
	hook     ReorgHook

	// rootSnap mirrors (root, epoch) for lock-free reads: Root() runs
	// at least twice per operation (the epoch-stable tree lock), and a
	// mutex there is measurable on the read hot path. Writers update it
	// under t.mu; the pointer swap publishes both fields atomically.
	rootSnap atomic.Pointer[rootRef]

	// rootFrame holds the current root's buffer frame, kept pinned by
	// the tree so every descent can skip the pager's shard mutex and
	// page-table probe. The pin also makes the frame unevictable, so
	// the cached pointer can never go stale; root switches re-point it
	// under the switch protocol. Close releases the pin.
	rootFrame atomic.Pointer[storage.Frame]

	// deferred free-at-empty leaves per transaction (processed at
	// commit, see delete.go).
	deferredMu   sync.Mutex
	deferredKeys map[uint64][]freeHint

	// hForgoWait, when non-nil, records how long forgoing descents
	// blocked on the instant-RS wait for the reorganizer (set once at
	// wiring time, before the tree sees traffic).
	hForgoWait *obs.Histogram
	// ring, when non-nil, receives leaf structure-modification events
	// (EvLeafSplit, EvLeafFree) — the daemon's cheap activity signal
	// for deciding when the occupancy picture is stale.
	ring *obs.Ring
}

// SetObserver wires the tree's forgo-wait histogram and trace ring
// (either may be nil to disable). Call before the tree sees traffic.
func (t *Tree) SetObserver(forgoWait *obs.Histogram, ring *obs.Ring) {
	t.hForgoWait = forgoWait
	t.ring = ring
}

// Create formats a new tree: the anchor at page 1, an internal root,
// and one empty leaf, all forced to disk.
func Create(pager *storage.Pager, log *wal.Log, locks *lock.Manager, txns *txn.Manager) (*Tree, error) {
	anchor, err := pager.AllocateAt(AnchorPage, storage.PageAnchor)
	if err != nil {
		return nil, fmt.Errorf("btree: create anchor: %w", err)
	}
	root, err := pager.Allocate(storage.PageInternal)
	if err != nil {
		pager.Unfix(anchor)
		return nil, err
	}
	leaf, err := pager.Allocate(storage.PageLeaf)
	if err != nil {
		pager.Unfix(root)
		pager.Unfix(anchor)
		return nil, err
	}
	root.Lock()
	root.Data().SetAux(1) // root level 1: a base page
	if err := kv.IndexInsert(root.Data(), []byte{}, leaf.ID()); err != nil {
		root.Unlock()
		pager.Unfix(leaf)
		pager.Unfix(root)
		pager.Unfix(anchor)
		return nil, err
	}
	root.Unlock()
	pager.MarkDirty(root, 0)
	pager.MarkDirty(leaf, 0)

	t := &Tree{pager: pager, log: log, locks: locks, txns: txns,
		root: root.ID(), epoch: 1, deferredKeys: make(map[uint64][]freeHint)}
	t.rootSnap.Store(&rootRef{root: t.root, epoch: t.epoch})
	anchor.Lock()
	t.writeAnchorLocked(anchor.Data())
	anchor.Unlock()
	pager.MarkDirty(anchor, 0)

	pager.Unfix(root)
	pager.Unfix(leaf)
	pager.Unfix(anchor)
	if err := pager.FlushAll(); err != nil {
		return nil, err
	}
	txns.SetUndoer(t)
	t.cacheRoot(t.root)
	return t, nil
}

// Open reads an existing tree's anchor.
func Open(pager *storage.Pager, log *wal.Log, locks *lock.Manager, txns *txn.Manager) (*Tree, error) {
	anchor, err := pager.Fix(AnchorPage)
	if err != nil {
		return nil, err
	}
	defer pager.Unfix(anchor)
	p := anchor.Data()
	if p.Type() != storage.PageAnchor {
		return nil, fmt.Errorf("btree: page %d is %v, not an anchor", AnchorPage, p.Type())
	}
	if v := p.Version(); v != storage.PageFormatVersion {
		return nil, fmt.Errorf("btree: anchor written as page format v%d, this build reads v%d: %w",
			v, storage.PageFormatVersion, storage.ErrPageVersion)
	}
	t := &Tree{pager: pager, log: log, locks: locks, txns: txns,
		deferredKeys: make(map[uint64][]freeHint)}
	t.root = storage.PageID(binary.LittleEndian.Uint32(p[anchorRoot:]))
	t.epoch = binary.LittleEndian.Uint64(p[anchorEpoch:])
	t.reorgBit = p[anchorReorgBit] != 0
	t.sideFile = storage.PageID(binary.LittleEndian.Uint32(p[anchorSideFile:]))
	t.rootSnap.Store(&rootRef{root: t.root, epoch: t.epoch})
	txns.SetUndoer(t)
	t.cacheRoot(t.root)
	return t, nil
}

// writeAnchorLocked serialises the cached anchor fields into the page.
// Caller holds t.mu (or is single-threaded setup) and the frame latch.
func (t *Tree) writeAnchorLocked(p storage.Page) {
	binary.LittleEndian.PutUint32(p[anchorRoot:], uint32(t.root))
	binary.LittleEndian.PutUint64(p[anchorEpoch:], t.epoch)
	if t.reorgBit {
		p[anchorReorgBit] = 1
	} else {
		p[anchorReorgBit] = 0
	}
	binary.LittleEndian.PutUint32(p[anchorSideFile:], uint32(t.sideFile))
}

// flushAnchor persists the cached anchor state (switch, reorg bit and
// side-file changes are forced immediately; the anchor is tiny and
// authoritative).
func (t *Tree) flushAnchor() error {
	anchor, err := t.pager.Fix(AnchorPage)
	if err != nil {
		return err
	}
	anchor.Lock()
	t.mu.Lock()
	t.writeAnchorLocked(anchor.Data())
	t.mu.Unlock()
	anchor.Unlock()
	t.pager.MarkDirty(anchor, 0)
	t.pager.Unfix(anchor)
	return t.pager.FlushPage(AnchorPage)
}

// Root returns the current root page and tree-lock epoch as one
// consistent snapshot.
func (t *Tree) Root() (storage.PageID, uint64) {
	r := t.rootSnap.Load()
	return r.root, r.epoch
}

// ReorgState returns the reorganization bit and side-file head.
func (t *Tree) ReorgState() (bit bool, sideFile storage.PageID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reorgBit, t.sideFile
}

// SetReorgHook installs (or clears) the side-file hook.
func (t *Tree) SetReorgHook(h ReorgHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = h
}

func (t *Tree) reorgHook() ReorgHook {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hook
}

// SetReorgBit flips the reorganization bit and forces the anchor.
func (t *Tree) SetReorgBit(on bool, sideFile storage.PageID) error {
	t.mu.Lock()
	t.reorgBit = on
	t.sideFile = sideFile
	t.mu.Unlock()
	return t.flushAnchor()
}

// SwitchRoot atomically installs the new tree (§7.4): the anchor's
// root pointer and epoch change together and are forced to disk. The
// caller (the reorganizer) holds the locks the protocol requires.
func (t *Tree) SwitchRoot(newRoot storage.PageID, newEpoch uint64) error {
	t.mu.Lock()
	t.root = newRoot
	t.epoch = newEpoch
	t.rootSnap.Store(&rootRef{root: newRoot, epoch: newEpoch})
	t.mu.Unlock()
	t.cacheRoot(newRoot)
	return t.flushAnchor()
}

// cacheRoot re-points the pinned root-frame cache at id. Best-effort:
// on a Fix error the cache is left empty and descents fall back to the
// pager. The new frame is published before the old pin drops, so a
// concurrent fixRoot sees either frame pinned.
func (t *Tree) cacheRoot(id storage.PageID) {
	nf, err := t.pager.Fix(id)
	if err != nil {
		nf = nil
	}
	old := t.rootFrame.Swap(nf)
	if old != nil {
		t.pager.Unfix(old)
	}
}

// fixRoot fixes the root page for a descent, taking an extra pin on
// the cached frame when it matches id. TryRepin fails only if the
// cached pin was dropped concurrently, in which case the pager slow
// path is correct.
func (t *Tree) fixRoot(id storage.PageID) (*storage.Frame, error) {
	if f := t.rootFrame.Load(); f != nil && f.ID() == id {
		if t.pager.TryRepin(f) {
			return f, nil
		}
	}
	return t.pager.Fix(id)
}

// Close releases the tree's cached root pin. It must run before the
// pager is closed: Pager.Close treats any remaining pin as a leak.
func (t *Tree) Close() {
	if f := t.rootFrame.Swap(nil); f != nil {
		t.pager.Unfix(f)
	}
}

// Pager returns the buffer pool (the reorganizer shares it).
func (t *Tree) Pager() *storage.Pager { return t.pager }

// Log returns the write-ahead log.
func (t *Tree) Log() *wal.Log { return t.log }

// Locks returns the lock manager.
func (t *Tree) Locks() *lock.Manager { return t.locks }

// Txns returns the transaction manager.
func (t *Tree) Txns() *txn.Manager { return t.txns }

// Height returns the number of levels including the leaf level.
func (t *Tree) Height() (int, error) {
	rootID, _ := t.Root()
	f, err := t.pager.Fix(rootID)
	if err != nil {
		return 0, err
	}
	defer t.pager.Unfix(f)
	return int(f.Data().Aux()) + 1, nil
}

// pageRes maps a page to its lock resource.
func pageRes(id storage.PageID) lock.Resource {
	return lock.PageRes(uint64(id))
}

// recordRes maps a record key to its lock resource (FNV-1a hash).
func recordRes(key []byte) lock.Resource {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return lock.RecordRes(h)
}

// logSMO appends a system (txn 0) update record and applies it to the
// page under its write latch. Structure modifications are redo-only.
func (t *Tree) logSMO(u wal.Update) (uint64, error) {
	u.Txn = 0
	u.PrevLSN = 0
	lsn := t.log.Append(u)
	if err := t.applyAt(u, lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// applyAt applies a logged operation at lsn to its page.
func (t *Tree) applyAt(u wal.Update, lsn uint64) error {
	return pageops.Apply(t.pager, u, lsn)
}

// MaxValueSize bounds record values so a record always fits in a
// fraction of a page (splits can then always make room).
func (t *Tree) MaxValueSize() int {
	return (t.pager.PageSize()-storage.HeaderSize)/4 - kv.MaxKeySize - 2 - storage.SlotSize
}

// ValidateRecord checks key/value size limits.
func (t *Tree) ValidateRecord(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > kv.MaxKeySize {
		return fmt.Errorf("btree: key length %d exceeds %d", len(key), kv.MaxKeySize)
	}
	if len(val) > t.MaxValueSize() {
		return fmt.Errorf("btree: value length %d exceeds %d", len(val), t.MaxValueSize())
	}
	return nil
}
