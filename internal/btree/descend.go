package btree

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/storage"
)

// maxDescendRetries bounds forgo-and-retry loops (each retry means the
// reader waited out one reorganization unit; units are short).
const maxDescendRetries = 10000

//vet:hotpath -- the shared point-descent under Get and modify (PR 7)
//
// descendToLeaf implements the reader/updater descent of §4.1.2/4.1.3:
// S lock-coupling down the internal levels, then leafMode (S or X) on
// the leaf with the forgo-on-RX protocol — on an RX conflict the base
// lock is released, an unconditional instant-duration RS lock on the
// base page blocks until the reorganizer finishes, and the descent
// resumes from the base page.
//
// On success the base and leaf frames are returned pinned, with an S
// lock held on the base and leafMode on the leaf. The caller must
// unfix both and release the locks it no longer needs.
func (t *Tree) descendToLeaf(owner uint64, key []byte, leafMode lock.Mode) (base, leaf *storage.Frame, err error) {
	rootID, _ := t.Root()
	cur := rootID
	if err := t.locks.Lock(owner, pageRes(cur), lock.S); err != nil {
		return nil, nil, err
	}
	f, err := t.fixRoot(cur)
	if err != nil {
		t.locks.Unlock(owner, pageRes(cur))
		return nil, nil, err
	}

	for retries := 0; ; retries++ {
		if retries > maxDescendRetries {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, nil, fmt.Errorf("btree: descent did not converge on key %q", key)
		}
		p := f.Data()
		if p.Type() != storage.PageInternal {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, nil, fmt.Errorf("btree: descent reached non-internal page %d (%v)", cur, p.Type())
		}
		child, _ := kv.ChildFor(p, key)
		if child == storage.InvalidPage {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, nil, fmt.Errorf("btree: internal page %d has no entries", cur)
		}
		if p.Aux() == 1 {
			// cur is a base page; child is the leaf.
			lockErr := t.locks.LockOpts(owner, pageRes(child), leafMode, lock.Opt{ForgoOnRX: true})
			if errors.Is(lockErr, lock.ErrReorgConflict) {
				// Forgo: release the base S lock, wait for the
				// reorganizer via instant RS, re-lock and re-route.
				t.locks.Unlock(owner, pageRes(cur))
				t.pager.Unfix(f)
				waitStart := time.Now()
				if err := t.locks.LockInstant(owner, pageRes(cur), lock.RS); err != nil {
					return nil, nil, err
				}
				if t.hForgoWait != nil {
					t.hForgoWait.Record(time.Since(waitStart))
				}
				if err := t.locks.Lock(owner, pageRes(cur), lock.S); err != nil {
					return nil, nil, err
				}
				f, err = t.pager.Fix(cur)
				if err != nil {
					t.locks.Unlock(owner, pageRes(cur))
					return nil, nil, err
				}
				continue
			}
			if lockErr != nil {
				t.locks.Unlock(owner, pageRes(cur))
				t.pager.Unfix(f)
				return nil, nil, lockErr
			}
			lf, err := t.pager.Fix(child)
			if err != nil {
				t.locks.Unlock(owner, pageRes(child))
				t.locks.Unlock(owner, pageRes(cur))
				t.pager.Unfix(f)
				return nil, nil, err
			}
			return f, lf, nil
		}
		// Interior level: S-couple to the child.
		if err := t.locks.Lock(owner, pageRes(child), lock.S); err != nil {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, nil, err
		}
		cf, err := t.pager.Fix(child)
		if err != nil {
			t.locks.Unlock(owner, pageRes(child))
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, nil, err
		}
		t.locks.Unlock(owner, pageRes(cur))
		t.pager.Unfix(f)
		cur, f = child, cf
	}
}

// DescendToBase lock-couples down to the base page covering key and
// acquires mode on it (the reorganizer uses mode R for passes 1–2 and
// S for pass 3). The frame is returned pinned with mode held; the
// coupling S lock is upgraded/kept per the lock lattice.
func (t *Tree) DescendToBase(owner uint64, key []byte, mode lock.Mode) (*storage.Frame, error) {
	rootID, _ := t.Root()
	return t.descendToBaseFrom(owner, rootID, key, mode)
}

// DescendToBaseOf is DescendToBase starting from an explicit root
// (pass 3 walks the old tree even while the anchor is changing).
func (t *Tree) DescendToBaseOf(owner uint64, rootID storage.PageID, key []byte, mode lock.Mode) (*storage.Frame, error) {
	return t.descendToBaseFrom(owner, rootID, key, mode)
}

func (t *Tree) descendToBaseFrom(owner uint64, rootID storage.PageID, key []byte, mode lock.Mode) (*storage.Frame, error) {
	cur := rootID
	if err := t.locks.Lock(owner, pageRes(cur), lock.S); err != nil {
		return nil, err
	}
	f, err := t.fixRoot(cur)
	if err != nil {
		t.locks.Unlock(owner, pageRes(cur))
		return nil, err
	}
	for {
		p := f.Data()
		if p.Type() != storage.PageInternal {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, fmt.Errorf("btree: base descent hit %v page %d", p.Type(), cur)
		}
		if p.Aux() == 1 {
			// cur is the base page: acquire the requested mode (the
			// lattice upgrades S -> R when needed).
			if mode != lock.S {
				if err := t.locks.Lock(owner, pageRes(cur), mode); err != nil {
					t.locks.Unlock(owner, pageRes(cur))
					t.pager.Unfix(f)
					return nil, err
				}
			}
			return f, nil
		}
		child, _ := kv.ChildFor(p, key)
		if child == storage.InvalidPage {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, fmt.Errorf("btree: internal page %d has no entries", cur)
		}
		if err := t.locks.Lock(owner, pageRes(child), lock.S); err != nil {
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, err
		}
		cf, err := t.pager.Fix(child)
		if err != nil {
			t.locks.Unlock(owner, pageRes(child))
			t.locks.Unlock(owner, pageRes(cur))
			t.pager.Unfix(f)
			return nil, err
		}
		t.locks.Unlock(owner, pageRes(cur))
		t.pager.Unfix(f)
		cur, f = child, cf
	}
}

// ReleaseBase drops the lock and pin DescendToBase returned.
func (t *Tree) ReleaseBase(owner uint64, f *storage.Frame) {
	t.locks.Unlock(owner, pageRes(f.ID()))
	t.pager.Unfix(f)
}

// FirstBase returns the leftmost base page locked in mode (the start of
// the reorganizer's left-to-right pass).
func (t *Tree) FirstBase(owner uint64, mode lock.Mode) (*storage.Frame, error) {
	return t.DescendToBase(owner, []byte{}, mode)
}

// NextBase implements the paper's Get_Next(k) (§7.1): it returns the
// base page whose low mark is the smallest one greater than k, locked
// in mode, or nil when k's base is the last. It S-lock-couples down
// while keeping the path locked so sibling navigation is consistent
// with concurrent splits.
func (t *Tree) NextBase(owner uint64, k []byte, mode lock.Mode) (*storage.Frame, error) {
	return t.NextBaseOf(owner, 0, k, mode)
}

// NextBaseOf is NextBase starting from an explicit root (0 means the
// current root); pass 3 keeps walking the old tree's bases regardless
// of anchor changes.
func (t *Tree) NextBaseOf(owner uint64, rootID storage.PageID, k []byte, mode lock.Mode) (*storage.Frame, error) {
	if rootID == storage.InvalidPage {
		rootID, _ = t.Root()
	}
	type node struct {
		f    *storage.Frame
		slot int // routing slot used at this node
	}
	var path []node
	release := func() {
		for _, n := range path {
			t.locks.Unlock(owner, pageRes(n.f.ID()))
			t.pager.Unfix(n.f)
		}
		path = nil
	}
	fixLocked := func(id storage.PageID) (*storage.Frame, error) {
		if err := t.locks.Lock(owner, pageRes(id), lock.S); err != nil {
			return nil, err
		}
		f, err := t.pager.Fix(id)
		if err != nil {
			t.locks.Unlock(owner, pageRes(id))
			return nil, err
		}
		return f, nil
	}

	f, err := fixLocked(rootID)
	if err != nil {
		return nil, err
	}
	path = append(path, node{f: f})

	// Route down to the level-2 node (the parent of base pages),
	// keeping the whole path S-locked for sibling navigation.
	for {
		cur := &path[len(path)-1]
		cur.f.RLock()
		p := cur.f.Data()
		level := p.Aux()
		child, slot := kv.ChildFor(p, k)
		cur.f.RUnlock()
		cur.slot = slot
		if level == 1 {
			// The tree has a single base page (it is the root): there
			// is no next base.
			release()
			return nil, nil
		}
		if child == storage.InvalidPage {
			release()
			return nil, fmt.Errorf("btree: internal page %d empty in NextBase", cur.f.ID())
		}
		if level == 2 {
			break
		}
		cf, err := fixLocked(child)
		if err != nil {
			release()
			return nil, err
		}
		path = append(path, node{f: cf})
	}

	// Climb from the level-2 node to the lowest ancestor with a right
	// sibling of the routing slot, then descend leftmost to base level.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		n.f.RLock()
		slots := n.f.Data().NumSlots()
		var nextChild storage.PageID
		if n.slot+1 < slots {
			_, nextChild = kv.DecodeIndexCell(n.f.Data().Cell(n.slot + 1))
		}
		n.f.RUnlock()
		if nextChild == storage.InvalidPage {
			continue
		}
		// Descend leftmost from nextChild to the base level.
		cur, err := fixLocked(nextChild)
		if err != nil {
			release()
			return nil, err
		}
		for {
			cur.RLock()
			level := cur.Data().Aux()
			var first storage.PageID
			if cur.Data().NumSlots() > 0 {
				_, first = kv.DecodeIndexCell(cur.Data().Cell(0))
			}
			cur.RUnlock()
			if level == 1 {
				release()
				if mode != lock.S {
					if err := t.locks.Lock(owner, pageRes(cur.ID()), mode); err != nil {
						t.locks.Unlock(owner, pageRes(cur.ID()))
						t.pager.Unfix(cur)
						return nil, err
					}
				}
				return cur, nil
			}
			if first == storage.InvalidPage {
				t.locks.Unlock(owner, pageRes(cur.ID()))
				t.pager.Unfix(cur)
				release()
				return nil, fmt.Errorf("btree: empty internal %d in NextBase descent", cur.ID())
			}
			nf, err := fixLocked(first)
			if err != nil {
				t.locks.Unlock(owner, pageRes(cur.ID()))
				t.pager.Unfix(cur)
				release()
				return nil, err
			}
			t.locks.Unlock(owner, pageRes(cur.ID()))
			t.pager.Unfix(cur)
			cur = nf
		}
	}
	release()
	return nil, nil // k's base is the rightmost
}
