package btree

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/storage"
)

// Stats summarises the physical state of the tree; the benchmarks use
// it to quantify what reorganization achieves (fill factor, height,
// on-disk ordering of leaves).
type Stats struct {
	Height        int
	InternalPages int
	LeafPages     int
	Records       int
	AvgLeafFill   float64 // mean fill factor over leaves
	MinLeafFill   float64
	LeafIDs       []storage.PageID // leaf pages in key order
	// OutOfOrderPairs counts adjacent key-ordered leaves whose page ids
	// decrease — the disorder a range scan pays seek cost for and pass 2
	// eliminates.
	OutOfOrderPairs int
	// ContiguousPairs counts adjacent key-ordered leaves at exactly
	// consecutive page ids.
	ContiguousPairs int
}

// Check verifies structural invariants. It takes no locks: call it on a
// quiescent tree (tests and tools).
func (t *Tree) Check() error {
	rootID, _ := t.Root()
	rootF, err := t.pager.Fix(rootID)
	if err != nil {
		return err
	}
	level := rootF.Data().Aux()
	typ := rootF.Data().Type()
	t.pager.Unfix(rootF)
	if typ != storage.PageInternal {
		return fmt.Errorf("btree: root %d is %v, want internal", rootID, typ)
	}
	var leaves []storage.PageID
	if err := t.checkNode(rootID, int(level), nil, nil, &leaves); err != nil {
		return err
	}
	return t.checkLeafChain(leaves)
}

// checkNode verifies one subtree: key ordering, level decrease, child
// typing, and that child keys lie within [lowBound, highBound).
func (t *Tree) checkNode(id storage.PageID, level int, lowBound, highBound []byte, leaves *[]storage.PageID) error {
	f, err := t.pager.Fix(id)
	if err != nil {
		return err
	}
	defer t.pager.Unfix(f)
	p := f.Data()
	if p.ID() != id {
		return fmt.Errorf("btree: page %d self-id is %d", id, p.ID())
	}
	if err := kv.Verify(p); err != nil {
		return err
	}
	if p.Type() == storage.PageLeaf {
		if level != 0 {
			return fmt.Errorf("btree: leaf %d at expected level %d", id, level)
		}
		n := p.NumSlots()
		if n > 0 {
			if lowBound != nil && kv.Compare(kv.SlotKey(p, 0), lowBound) < 0 {
				return fmt.Errorf("btree: leaf %d key %q below bound %q", id, kv.SlotKey(p, 0), lowBound)
			}
			if highBound != nil && kv.Compare(kv.SlotKey(p, n-1), highBound) >= 0 {
				return fmt.Errorf("btree: leaf %d key %q not below bound %q", id, kv.SlotKey(p, n-1), highBound)
			}
		}
		*leaves = append(*leaves, id)
		return nil
	}
	if p.Type() != storage.PageInternal {
		return fmt.Errorf("btree: page %d has type %v inside the tree", id, p.Type())
	}
	if int(p.Aux()) != level {
		return fmt.Errorf("btree: internal %d level %d, expected %d", id, p.Aux(), level)
	}
	n := p.NumSlots()
	if n == 0 {
		return fmt.Errorf("btree: internal page %d is empty", id)
	}
	for i := 0; i < n; i++ {
		key, child := kv.DecodeIndexCell(p.Cell(i))
		if lowBound != nil && kv.Compare(key, lowBound) < 0 {
			return fmt.Errorf("btree: internal %d entry %q below bound %q", id, key, lowBound)
		}
		if highBound != nil && kv.Compare(key, highBound) >= 0 {
			return fmt.Errorf("btree: internal %d entry %q not below bound %q", id, key, highBound)
		}
		childLow := key
		if i == 0 {
			// The leftmost child may hold keys below its entry key
			// (low-mark routing): inherit this node's lower bound.
			childLow = lowBound
		}
		childHigh := highBound
		if i+1 < n {
			childHigh = kv.SlotKey(p, i+1)
		}
		if err := t.checkNode(child, level-1, childLow, childHigh, leaves); err != nil {
			return err
		}
	}
	return nil
}

// checkLeafChain verifies the two-way side pointers visit exactly the
// leaves in key order.
func (t *Tree) checkLeafChain(leaves []storage.PageID) error {
	for i, id := range leaves {
		f, err := t.pager.Fix(id)
		if err != nil {
			return err
		}
		prev, next := f.Data().Prev(), f.Data().Next()
		t.pager.Unfix(f)
		var wantPrev, wantNext storage.PageID
		if i > 0 {
			wantPrev = leaves[i-1]
		}
		if i+1 < len(leaves) {
			wantNext = leaves[i+1]
		}
		if prev != wantPrev {
			return fmt.Errorf("btree: leaf %d prev = %d, want %d", id, prev, wantPrev)
		}
		if next != wantNext {
			return fmt.Errorf("btree: leaf %d next = %d, want %d", id, next, wantNext)
		}
	}
	return nil
}

// GatherStats walks the quiescent tree and returns physical statistics.
func (t *Tree) GatherStats() (Stats, error) {
	var s Stats
	rootID, _ := t.Root()
	rootF, err := t.pager.Fix(rootID)
	if err != nil {
		return s, err
	}
	s.Height = int(rootF.Data().Aux()) + 1
	t.pager.Unfix(rootF)

	var walk func(id storage.PageID) error
	minFill := 1.0
	walk = func(id storage.PageID) error {
		f, err := t.pager.Fix(id)
		if err != nil {
			return err
		}
		p := f.Data()
		if p.Type() == storage.PageLeaf {
			s.LeafPages++
			s.Records += p.NumSlots()
			fill := p.FillFactor()
			s.AvgLeafFill += fill
			if fill < minFill {
				minFill = fill
			}
			s.LeafIDs = append(s.LeafIDs, id)
			t.pager.Unfix(f)
			return nil
		}
		s.InternalPages++
		n := p.NumSlots()
		children := make([]storage.PageID, 0, n)
		for i := 0; i < n; i++ {
			_, child := kv.DecodeIndexCell(p.Cell(i))
			children = append(children, child)
		}
		t.pager.Unfix(f)
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(rootID); err != nil {
		return s, err
	}
	if s.LeafPages > 0 {
		s.AvgLeafFill /= float64(s.LeafPages)
		s.MinLeafFill = minFill
	}
	for i := 1; i < len(s.LeafIDs); i++ {
		if s.LeafIDs[i] < s.LeafIDs[i-1] {
			s.OutOfOrderPairs++
		}
		if s.LeafIDs[i] == s.LeafIDs[i-1]+1 {
			s.ContiguousPairs++
		}
	}
	return s, nil
}

// RangeOccupancy is one key-range cell of the occupancy gauges: how
// full and how contiguous the leaves covering [LoKey, HiKey] are. The
// autonomous reorganization policy reads these to find where sparsity
// has accumulated without walking the whole tree into one number.
type RangeOccupancy struct {
	LoKey   []byte
	HiKey   []byte
	Leaves  int
	Records int
	AvgFill float64
	MinFill float64
	// Pairs counts adjacent leaf pairs inside the range;
	// ContiguousPairs those at consecutive page ids, OutOfOrderPairs
	// those whose page ids decrease.
	Pairs           int
	ContiguousPairs int
	OutOfOrderPairs int
}

// leafSample is one leaf's occupancy reading during the chain walk.
type leafSample struct {
	id       storage.PageID
	firstKey []byte
	records  int
	fill     float64
}

// GatherRangeOccupancy walks the leaf chain and aggregates occupancy
// into at most n contiguous key ranges of roughly equal leaf count.
// The walk follows side pointers under per-frame read latches, so it
// can run on a live system; concurrent splits may skew a cell by a
// leaf or two (best-effort gauges, not an audit).
func (t *Tree) GatherRangeOccupancy(n int) ([]RangeOccupancy, error) {
	if n <= 0 {
		n = 1
	}
	rootID, _ := t.Root()
	cur, err := t.pager.Fix(rootID)
	if err != nil {
		return nil, err
	}
	// Descend leftmost child pointers to the first leaf.
	for {
		cur.RLock()
		p := cur.Data()
		if p.Type() == storage.PageLeaf {
			cur.RUnlock()
			break
		}
		if p.NumSlots() == 0 {
			cur.RUnlock()
			t.pager.Unfix(cur)
			return nil, fmt.Errorf("btree: empty internal %d in occupancy walk", cur.ID())
		}
		_, child := kv.DecodeIndexCell(p.Cell(0))
		cur.RUnlock()
		cf, err := t.pager.Fix(child)
		if err != nil {
			t.pager.Unfix(cur)
			return nil, err
		}
		t.pager.Unfix(cur)
		cur = cf
	}
	var leaves []leafSample
	for {
		cur.RLock()
		p := cur.Data()
		ls := leafSample{id: cur.ID(), records: p.NumSlots(), fill: p.FillFactor()}
		if ls.records > 0 {
			ls.firstKey = append([]byte(nil), kv.SlotKey(p, 0)...)
		}
		next := p.Next()
		cur.RUnlock()
		t.pager.Unfix(cur)
		leaves = append(leaves, ls)
		if next == storage.InvalidPage {
			break
		}
		if cur, err = t.pager.Fix(next); err != nil {
			return nil, err
		}
	}
	if n > len(leaves) {
		n = len(leaves)
	}
	out := make([]RangeOccupancy, 0, n)
	for c := 0; c < n; c++ {
		lo, hi := c*len(leaves)/n, (c+1)*len(leaves)/n
		cell := RangeOccupancy{MinFill: 1}
		for i := lo; i < hi; i++ {
			s := leaves[i]
			cell.Leaves++
			cell.Records += s.records
			cell.AvgFill += s.fill
			if s.fill < cell.MinFill {
				cell.MinFill = s.fill
			}
			if cell.LoKey == nil {
				cell.LoKey = s.firstKey
			}
			if s.firstKey != nil {
				cell.HiKey = s.firstKey
			}
			if i > lo {
				cell.Pairs++
				if s.id == leaves[i-1].id+1 {
					cell.ContiguousPairs++
				}
				if s.id < leaves[i-1].id {
					cell.OutOfOrderPairs++
				}
			}
		}
		if cell.Leaves > 0 {
			cell.AvgFill /= float64(cell.Leaves)
		} else {
			cell.MinFill = 0
		}
		out = append(out, cell)
	}
	return out, nil
}

// CollectAll returns every record in the tree in key order (test
// support; quiescent tree only).
func (t *Tree) CollectAll() (keys, vals [][]byte, err error) {
	rootID, _ := t.Root()
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		f, err := t.pager.Fix(id)
		if err != nil {
			return err
		}
		p := f.Data()
		if p.Type() == storage.PageLeaf {
			for i := 0; i < p.NumSlots(); i++ {
				k, v := kv.DecodeLeafCell(p.Cell(i))
				keys = append(keys, append([]byte(nil), k...))
				vals = append(vals, append([]byte(nil), v...))
			}
			t.pager.Unfix(f)
			return nil
		}
		n := p.NumSlots()
		children := make([]storage.PageID, 0, n)
		for i := 0; i < n; i++ {
			_, child := kv.DecodeIndexCell(p.Cell(i))
			children = append(children, child)
		}
		t.pager.Unfix(f)
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(rootID); err != nil {
		return nil, nil, err
	}
	return keys, vals, nil
}
