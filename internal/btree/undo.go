package btree

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/pageops"
	"repro/internal/wal"
)

// UndoUpdate implements txn.Undoer: logical (key-based) undo. The
// record the update touched is located through the index — the
// transaction's own splits may have carried it to a different leaf —
// and the compensating operation is logged as a CLR and applied. The
// transaction still holds its X record lock, so the record cannot move
// while the leaf IX lock is acquired.
func (t *Tree) UndoUpdate(owner uint64, rec wal.Update) (uint64, error) {
	op, key, newVal, err := pageops.Inverse(rec)
	if err != nil {
		return 0, err
	}
	switch rec.Op {
	case wal.OpInsert, wal.OpDelete, wal.OpReplace:
		// fall through to the descent below
	default:
		// Side-pointer and format changes are structure modifications
		// (txn 0) and never appear in an undo chain.
		return 0, fmt.Errorf("btree: op %v cannot be undone logically", rec.Op)
	}

	for attempt := 0; attempt < maxDescendRetries; attempt++ {
		base, leaf, derr := t.descendToLeaf(owner, key, lock.IX)
		if derr != nil {
			return 0, derr
		}
		t.ReleaseBase(owner, base)
		clr := wal.CLR{
			Txn:      rec.Txn,
			UndoNext: rec.PrevLSN,
			Page:     leaf.ID(),
			Op:       op,
			Key:      key,
			NewVal:   newVal,
		}
		lsn := t.log.Append(clr)
		leaf.Lock()
		aerr := pageops.ApplyToPage(leaf.Data(), op, key, newVal)
		if aerr == nil {
			leaf.Data().SetLSN(lsn)
		}
		leaf.Unlock()
		t.pager.MarkDirty(leaf, lsn)
		t.pager.Unfix(leaf)
		if aerr != nil {
			// An undo-insert can hit a full page (records shuffled by
			// the transaction's own splits); make room with the normal
			// split machinery is not available here, so report it —
			// record sizes are bounded to a quarter page, making this
			// unreachable in practice after a delete freed the space.
			return 0, fmt.Errorf("btree: undo %v of %q on leaf %d: %w",
				op, key, leaf.ID(), aerr)
		}
		return lsn, nil
	}
	return 0, fmt.Errorf("btree: undo of %q did not converge", key)
}
