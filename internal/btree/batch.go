package btree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// maxBatchRun caps how many records one descent applies under a single
// leaf latch: it bounds latch hold time and the number of record locks
// held before the latch is taken.
const maxBatchRun = 64

// InsertBatch inserts the given records, amortising tree descents:
// the batch is applied in key order, and each descent applies the whole
// run of consecutive keys covered by the reached leaf under one frame
// latch and one log sequence. Locking is the updater protocol of
// modify — IX tree lock, IX leaf page lock, X record locks (taken in
// key order before the leaf latch, so lock waits stay visible to the
// deadlock detector) — making a batch indistinguishable from the
// equivalent single inserts to concurrent transactions and to recovery.
//
// Duplicate keys (within the batch or against the tree) fail with
// kv.ErrExists; records already applied stay applied, so callers
// wanting atomicity abort the transaction on error.
func (t *Tree) InsertBatch(tx *txn.Txn, keys, vals [][]byte) error {
	n := len(keys)
	if n != len(vals) {
		return fmt.Errorf("btree: batch has %d keys but %d values", n, len(vals))
	}
	if n == 0 {
		return nil
	}
	for i := range keys {
		if err := t.ValidateRecord(keys[i], vals[i]); err != nil {
			return err
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return kv.Compare(keys[order[a]], keys[order[b]]) < 0
	})
	for i := 1; i < n; i++ {
		if kv.Compare(keys[order[i-1]], keys[order[i]]) == 0 {
			return fmt.Errorf("btree: batch insert %q: %w", keys[order[i]], kv.ErrExists)
		}
	}

	owner := tx.ID()
	if err := t.lockTree(owner, lock.IX); err != nil {
		return err
	}
	next := 0
	for next < n {
		key := keys[order[next]]
		base, leaf, err := t.descendToLeaf(owner, key, lock.IX)
		if err != nil {
			return err
		}
		// The leaf's coverage ends at the next base-page entry. The IX
		// page lock blocks splits of this leaf and reorganization, and
		// changes to the right sibling only ever move the true bound
		// up, so the snapshot stays a safe (conservative) run limit.
		// When the leaf hangs off the base's last entry its bound lives
		// in an ancestor; fall back to one record for that descent.
		var bound []byte
		base.RLock()
		bp := base.Data()
		_, slot := kv.ChildFor(bp, key)
		if slot >= 0 && slot+1 < bp.NumSlots() {
			bound = append([]byte(nil), kv.SlotKey(bp, slot+1)...)
		}
		base.RUnlock()
		t.ReleaseBase(owner, base)

		end := next + 1
		if bound != nil {
			for end < n && end-next < maxBatchRun && kv.Compare(keys[order[end]], bound) < 0 {
				end++
			}
		}
		for i := next; i < end; i++ {
			if err := t.locks.Lock(owner, recordRes(keys[order[i]]), lock.X); err != nil {
				t.pager.Unfix(leaf)
				return err
			}
		}
		applied, aerr := t.applyBatchLogged(tx, leaf, keys, vals, order[next:end])
		t.pager.Unfix(leaf)
		next += applied
		if aerr == nil {
			continue
		}
		if errors.Is(aerr, storage.ErrPageFull) {
			// The next record did not fit: take the split path for it,
			// then resume batching on a fresh descent.
			u := wal.Update{Op: wal.OpInsert, Key: keys[order[next]], NewVal: vals[order[next]]}
			for attempt := 0; ; attempt++ {
				if attempt > maxDescendRetries {
					return fmt.Errorf("btree: batch insert of %q did not converge", u.Key)
				}
				serr := t.insertSMO(tx, u)
				if serr == errRetryDescent {
					continue
				}
				if serr != nil {
					return serr
				}
				break
			}
			next++
			continue
		}
		return aerr
	}
	return nil
}

//vet:hotpath -- the InsertBatch leaf-run inner loop (PR 7's 1.9x)
//
// applyBatchLogged applies a run of inserts to one leaf under a single
// frame latch, validating, logging and applying each in order. It
// returns how many were applied; on error the remainder of the run is
// untouched (the failing record is at index "applied" of idx).
func (t *Tree) applyBatchLogged(tx *txn.Txn, f *storage.Frame, keys, vals [][]byte, idx []int) (int, error) {
	f.Lock()
	defer f.Unlock()
	p := f.Data()
	var cell []byte // reused across the run; InsertCell copies it into the page
	for applied, j := range idx {
		key, val := keys[j], vals[j]
		slot, found := kv.Search(p, key)
		if found {
			return applied, fmt.Errorf("btree: insert %q: %w", key, kv.ErrExists)
		}
		if p.FreeSpace() < 2+len(key)+len(val) {
			return applied, storage.ErrPageFull
		}
		lsn := tx.LogUpdate(wal.Update{Page: f.ID(), Op: wal.OpInsert, Key: key, NewVal: val})
		cell = kv.AppendLeafCell(cell[:0], key, val)
		if err := p.InsertCell(slot, cell); err != nil {
			// The space check above makes this unreachable.
			panic(fmt.Sprintf("btree: logged batch insert failed to apply: %v", err))
		}
		p.SetLSN(lsn)
		t.pager.MarkDirty(f, lsn)
	}
	return len(idx), nil
}
