package btree

import (
	"errors"
	"fmt"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Scan calls fn for every record with lo <= key <= hi (hi nil means
// unbounded) in key order, stopping early when fn returns false. It
// follows the leaf side pointers with S lock coupling; when the next
// leaf is held RX by the reorganizer the scan falls back to a fresh
// descent on the successor key (the reader protocol's forgo-and-wait,
// expressed as re-seek). Scanned leaves are downgraded to IS locks held
// to end of transaction.
func (t *Tree) Scan(tx *txn.Txn, lo, hi []byte, fn func(key, val []byte) bool) error {
	owner := tx.ID()
	if err := t.lockTree(owner, lock.IS); err != nil {
		return err
	}
	seek := append([]byte(nil), lo...)
	inclusive := true
	for hops := 0; hops < 1<<22; hops++ {
		base, leaf, err := t.descendToLeaf(owner, seek, lock.S)
		if err != nil {
			return err
		}
		t.ReleaseBase(owner, base)
		done, last, err := t.scanChain(tx, leaf, seek, hi, inclusive, fn)
		if err != nil || done {
			return err
		}
		// The chain walk was interrupted by the reorganizer: re-seek
		// strictly past the last key it reported.
		seek = last
		inclusive = false
	}
	return fmt.Errorf("btree: scan did not terminate")
}

// scanChain walks leaves from the given (S-locked, pinned) leaf via
// side pointers. done=false means the walk was interrupted and the
// caller should re-seek strictly past `last`.
func (t *Tree) scanChain(tx *txn.Txn, leaf *storage.Frame, lo, hi []byte,
	inclusive bool, fn func(key, val []byte) bool) (done bool, last []byte, err error) {
	owner := tx.ID()
	last = append([]byte(nil), lo...)
	for {
		type rec struct{ k, v []byte }
		var recs []rec
		beyondHi := false
		leaf.RLock()
		p := leaf.Data()
		for i := 0; i < p.NumSlots(); i++ {
			k, v := kv.DecodeLeafCell(p.Cell(i))
			if c := kv.Compare(k, lo); c < 0 || (c == 0 && !inclusive) {
				continue
			}
			if hi != nil && kv.Compare(k, hi) > 0 {
				beyondHi = true
				break
			}
			recs = append(recs, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
		}
		next := p.Next()
		leaf.RUnlock()

		for _, r := range recs {
			last = r.k
			inclusive = false
			if !fn(r.k, r.v) {
				t.finishLeaf(owner, leaf)
				return true, last, nil
			}
		}
		if beyondHi || next == storage.InvalidPage {
			t.finishLeaf(owner, leaf)
			return true, last, nil
		}

		// Couple to the next leaf before releasing the current one.
		lockErr := t.locks.LockOpts(owner, pageRes(next), lock.S, lock.Opt{ForgoOnRX: true})
		if errors.Is(lockErr, lock.ErrReorgConflict) {
			t.finishLeaf(owner, leaf)
			return false, last, nil // caller re-seeks past `last`
		}
		if lockErr != nil {
			t.finishLeaf(owner, leaf)
			return true, last, lockErr
		}
		nf, ferr := t.pager.Fix(next)
		if ferr != nil {
			t.locks.Unlock(owner, pageRes(next))
			t.finishLeaf(owner, leaf)
			return true, last, ferr
		}
		t.finishLeaf(owner, leaf)
		leaf = nf
	}
}

// finishLeaf downgrades the scan's S lock to IS (held to end of
// transaction) and unpins the frame.
func (t *Tree) finishLeaf(owner uint64, leaf *storage.Frame) {
	t.locks.Downgrade(owner, pageRes(leaf.ID()), lock.IS)
	t.pager.Unfix(leaf)
}

// Count returns the number of records in [lo, hi].
func (t *Tree) Count(tx *txn.Txn, lo, hi []byte) (int, error) {
	n := 0
	err := t.Scan(tx, lo, hi, func(_, _ []byte) bool {
		n++
		return true
	})
	return n, err
}
