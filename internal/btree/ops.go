package btree

import (
	"errors"
	"fmt"

	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// lockTree takes the tree lock in the given intention mode against the
// current epoch, retrying if the root switch changes the epoch
// underneath (the old and new trees have distinct lock names, §7.4).
func (t *Tree) lockTree(owner uint64, mode lock.Mode) error {
	for i := 0; i < maxDescendRetries; i++ {
		_, epoch := t.Root()
		if err := t.locks.Lock(owner, lock.TreeRes(epoch), mode); err != nil {
			return err
		}
		if _, e2 := t.Root(); e2 == epoch {
			return nil
		}
		t.locks.Unlock(owner, lock.TreeRes(epoch))
	}
	return fmt.Errorf("btree: tree lock did not stabilise")
}

// applyLogged validates, logs and applies one record operation on a
// leaf under its write latch. Validation happens before logging so a
// failed operation (duplicate key, missing key, full page) leaves no
// log record behind. The caller holds the logical locks.
func (t *Tree) applyLogged(tx *txn.Txn, f *storage.Frame, u wal.Update) error {
	f.Lock()
	defer f.Unlock()
	p := f.Data()
	// Validation finds the slot once; the apply below reuses it instead
	// of re-searching through pageops.ApplyToPage (redo keeps using that
	// path, where no validated slot exists).
	slot, found := kv.Search(p, u.Key)
	switch u.Op {
	case wal.OpInsert:
		if found {
			return fmt.Errorf("btree: insert %q: %w", u.Key, kv.ErrExists)
		}
		if p.FreeSpace() < 2+len(u.Key)+len(u.NewVal) {
			return storage.ErrPageFull
		}
	case wal.OpDelete:
		if !found {
			return fmt.Errorf("btree: delete %q: %w", u.Key, kv.ErrNotFound)
		}
		_, old := kv.DecodeLeafCell(p.Cell(slot))
		u.OldVal = append([]byte(nil), old...)
	case wal.OpReplace:
		if !found {
			return fmt.Errorf("btree: replace %q: %w", u.Key, kv.ErrNotFound)
		}
		_, old := kv.DecodeLeafCell(p.Cell(slot))
		if len(u.NewVal) > len(old) && p.FreeSpace() < 2+len(u.Key)+len(u.NewVal) {
			return storage.ErrPageFull
		}
		u.OldVal = append([]byte(nil), old...)
	default:
		return fmt.Errorf("btree: applyLogged does not handle %v", u.Op)
	}
	lsn := tx.LogUpdate(u)
	var err error
	switch u.Op {
	case wal.OpInsert:
		err = p.InsertCell(slot, kv.EncodeLeafCell(u.Key, u.NewVal))
	case wal.OpDelete:
		err = p.DeleteCell(slot)
	case wal.OpReplace:
		err = p.ReplaceCell(slot, kv.EncodeLeafCell(u.Key, u.NewVal))
	}
	if err != nil {
		// Validation above makes this unreachable; fail loudly if not.
		panic(fmt.Sprintf("btree: logged op failed to apply: %v", err))
	}
	p.SetLSN(lsn)
	t.pager.MarkDirty(f, lsn)
	return nil
}

//vet:hotpath -- the point-read descent must stay allocation-free (PR 7)
//
// Get returns the value for key (a copy), taking an IS tree lock,
// lock-coupling to the leaf with the forgo-on-RX protocol, an IS page
// lock and an S record lock held to end of transaction.
func (t *Tree) Get(tx *txn.Txn, key []byte) ([]byte, bool, error) {
	owner := tx.ID()
	if err := t.lockTree(owner, lock.IS); err != nil {
		return nil, false, err
	}
	base, leaf, err := t.descendToLeaf(owner, key, lock.IS)
	if err != nil {
		return nil, false, err
	}
	t.ReleaseBase(owner, base)
	if err := t.locks.Lock(owner, recordRes(key), lock.S); err != nil {
		t.pager.Unfix(leaf)
		return nil, false, err
	}
	leaf.RLock()
	v, ok := kv.LeafGet(leaf.Data(), key)
	var out []byte
	if ok {
		//vet:allow(hotalloc) -- the returned copy is Get's API contract: the caller keeps the value past the latch
		out = append([]byte(nil), v...)
	}
	leaf.RUnlock()
	t.pager.Unfix(leaf) // the IS page lock stays until end of transaction
	return out, ok, nil
}

// Insert adds (key, value). Duplicate keys return kv.ErrExists.
func (t *Tree) Insert(tx *txn.Txn, key, val []byte) error {
	if err := t.ValidateRecord(key, val); err != nil {
		return err
	}
	return t.modify(tx, wal.Update{Op: wal.OpInsert, Key: key, NewVal: val})
}

// Update replaces the value of an existing key.
func (t *Tree) Update(tx *txn.Txn, key, val []byte) error {
	if err := t.ValidateRecord(key, val); err != nil {
		return err
	}
	return t.modify(tx, wal.Update{Op: wal.OpReplace, Key: key, NewVal: val})
}

// Delete removes key. Emptied leaves are deallocated at commit
// (free-at-empty deferred so record undo stays sound).
func (t *Tree) Delete(tx *txn.Txn, key []byte) error {
	return t.modify(tx, wal.Update{Op: wal.OpDelete, Key: key})
}

// modify runs one record operation under the updater protocol: IX tree
// lock, descent to the leaf with IX (forgo on RX), X record lock, then
// the logged apply. A full page escalates to the split path.
func (t *Tree) modify(tx *txn.Txn, u wal.Update) error {
	owner := tx.ID()
	if err := t.lockTree(owner, lock.IX); err != nil {
		return err
	}
	for attempt := 0; attempt < maxDescendRetries; attempt++ {
		base, leaf, err := t.descendToLeaf(owner, u.Key, lock.IX)
		if err != nil {
			return err
		}
		t.ReleaseBase(owner, base)
		if err := t.locks.Lock(owner, recordRes(u.Key), lock.X); err != nil {
			t.pager.Unfix(leaf)
			return err
		}
		u.Page = leaf.ID()
		err = t.applyLogged(tx, leaf, u)
		if err == nil {
			if u.Op == wal.OpDelete {
				leaf.RLock()
				empty := leaf.Data().NumSlots() == 0
				leaf.RUnlock()
				if empty {
					t.deferFree(owner, leaf.ID(), u.Key)
				}
			}
			t.pager.Unfix(leaf)
			return nil
		}
		t.pager.Unfix(leaf)
		if errors.Is(err, storage.ErrPageFull) {
			smoErr := t.insertSMO(tx, u)
			if smoErr == errRetryDescent {
				continue
			}
			return smoErr
		}
		return err
	}
	return fmt.Errorf("btree: modify of %q did not converge", u.Key)
}
