// Package metrics aggregates the counters the paper's evaluation is
// framed around: reorganization units by type, records moved, swaps
// avoided by the Find-Free-Space heuristic, log volume, and blocked
// time for user transactions.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters is a concurrency-safe named-counter set.
type Counters struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// New returns an empty counter set.
func New() *Counters {
	return &Counters{m: make(map[string]*atomic.Int64)}
}

func (c *Counters) counter(name string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[name]
	if !ok {
		v = &atomic.Int64{}
		c.m[name] = v
	}
	return v
}

// Add increments a named counter.
func (c *Counters) Add(name string, delta int64) {
	c.counter(name).Add(delta)
}

// Handle resolves a named counter once and returns the underlying
// atomic, so hot paths can increment it without the mutex-map lookup
// Add pays. Handles stay valid for the life of the Counters.
func (c *Counters) Handle(name string) *atomic.Int64 {
	return c.counter(name)
}

// Get reads a named counter.
func (c *Counters) Get(name string) int64 {
	return c.counter(name).Load()
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// String renders the counters sorted by name (for reports).
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %d\n", k, snap[k])
	}
	return b.String()
}

// Counter names used by the reorganizer and baseline.
const (
	UnitsCompact    = "units.compact"
	UnitsMove       = "units.move"
	UnitsSwap       = "units.swap"
	RecordsMoved    = "records.moved"
	PagesFreed      = "pages.freed"
	PagesAllocated  = "pages.allocated"
	UnitsDeadlocked = "units.deadlocked"
	Pass2Swaps      = "pass2.swaps"
	Pass2Moves      = "pass2.moves"
	Pass3Bases      = "pass3.bases.read"
	Pass3SideApply  = "pass3.side.applied"
	Pass3Stable     = "pass3.stable.points"
	BaselineTxns    = "baseline.txns"
	BaselineOps     = "baseline.block.ops"
)

// Counter names for the concurrent hot path: buffer-pool sharding and
// WAL group commit (surfaced by DB.PerfCounters and btree-inspect).
const (
	PoolShards          = "pool.shards"
	PoolHits            = "pool.hits"
	PoolMisses          = "pool.misses"
	PoolEvictions       = "pool.evictions"
	PoolDirtyEvictions  = "pool.evictions.dirty"
	PoolEvictionScans   = "pool.eviction.scans"
	PoolShardContention = "pool.shard.contention"
	WALBytesAppended    = "wal.bytes.appended"
	WALForcedWrites     = "wal.forced.writes"
	WALForcesSaved      = "wal.forces.saved"
	WALGroupLeaders     = "wal.group.leaders"
	WALBytesForced      = "wal.bytes.forced"
)

// Counter names for real media traffic (file backend; all zero on the
// in-memory backend except disk.bytes.*, which count simulated
// transfers). These are the write-amplification inputs.
const (
	DiskBytesRead    = "disk.bytes.read"
	DiskBytesWritten = "disk.bytes.written"
	DiskFsyncs       = "disk.fsyncs"
	WALFsyncs        = "wal.fsyncs"
	WALSegsCreated   = "wal.segments.created"
	WALSegsDeleted   = "wal.segments.deleted"
	WALSegsLive      = "wal.segments.live"
)

// Autonomous-reorganization daemon counters (internal/daemon).
const (
	DaemonTicks      = "daemon.ticks"
	DaemonIncrements = "daemon.increments"
	DaemonUnits      = "daemon.units"
	DaemonBackoffs   = "daemon.backoffs"
	DaemonSkips      = "daemon.skips.quiescent"
	DaemonErrors     = "daemon.errors"
)
