package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddGetSnapshot(t *testing.T) {
	c := New()
	c.Add("a", 3)
	c.Add("a", 2)
	c.Add("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Errorf("counters: a=%d b=%d missing=%d", c.Get("a"), c.Get("b"), c.Get("missing"))
	}
	snap := c.Snapshot()
	if snap["a"] != 5 || len(snap) != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestStringSortedByName(t *testing.T) {
	c := New()
	c.Add("zeta", 1)
	c.Add("alpha", 2)
	s := c.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Errorf("not sorted:\n%s", s)
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(UnitsCompact, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(UnitsCompact); got != 8000 {
		t.Errorf("concurrent adds = %d, want 8000", got)
	}
}
