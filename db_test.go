package repro

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestOpenInsertGetDelete(t *testing.T) {
	db, err := Open(Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := db.Insert([]byte("alpha"), []byte("2")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := db.Update([]byte("alpha"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Get([]byte("alpha"))
	if string(v) != "2" {
		t.Errorf("after update: %q", v)
	}
	if err := db.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete err = %v", err)
	}
}

func TestMultiOpTransactionAtomicity(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	tx := db.Begin()
	for i := 0; i < 10; i++ {
		if err := tx.Insert(workload.Key(i), workload.Value(i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	n, err := db.Count(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("aborted transaction left %d records", n)
	}

	tx2 := db.Begin()
	for i := 0; i < 10; i++ {
		if err := tx2.Insert(workload.Key(i), workload.Value(i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count(nil, nil); n != 10 {
		t.Errorf("committed %d records, want 10", n)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	if err := workload.Load(db, 500, 24, "random", 1); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err := db.Scan(workload.Key(100), workload.Key(199), func(k, _ []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 100 {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("scan out of order")
		}
	}
}

func TestReorganizeEndToEnd(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	const n = 4000
	if err := workload.Load(db, n, 32, "random", 7); err != nil {
		t.Fatal(err)
	}
	keep, err := workload.Sparsify(db, n, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := db.GatherStats()
	m, err := db.Reorganize(DefaultReorgConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	after, _ := db.GatherStats()
	t.Logf("reorg: leaves %d->%d fill %.2f->%.2f height %d->%d inversions %d->%d",
		before.LeafPages, after.LeafPages, before.AvgLeafFill, after.AvgLeafFill,
		before.Height, after.Height, before.OutOfOrderPairs, after.OutOfOrderPairs)
	t.Logf("counters:\n%s", m)
	if after.AvgLeafFill <= before.AvgLeafFill {
		t.Error("fill factor did not improve")
	}
	if after.OutOfOrderPairs != 0 {
		t.Errorf("%d leaf inversions remain", after.OutOfOrderPairs)
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(workload.Key(i))
		if keep(i) {
			if err != nil {
				t.Fatalf("record %d lost: %v", i, err)
			}
			if string(v) != string(workload.Value(i, 32)) {
				t.Fatalf("record %d corrupted", i)
			}
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted record %d: %v", i, err)
		}
	}
}

func TestCrashRestartEndToEnd(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	if err := workload.Load(db, 1000, 24, "seq", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1200; i++ {
		if err := db.Insert(workload.Key(i), workload.Value(i, 24)); err != nil {
			t.Fatal(err)
		}
	}
	db.Crash()
	info, err := db.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	n, _ := db.Count(nil, nil)
	if n != 1200 {
		t.Errorf("recovered %d records, want 1200 (info %+v)", n, info)
	}
	// The database stays usable after restart.
	if err := db.Insert(workload.Key(5000), []byte("post")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClientsDuringReorg(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	const n = 3000
	if err := workload.Load(db, n, 24, "random", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Sparsify(db, n, 0.3); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stats workload.ClientStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats = workload.RunClients(db, 6, 0, workload.Balanced, n, 24, stop)
	}()
	if _, err := db.Reorganize(DefaultReorgConfig()); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if stats.Errors > 0 {
		t.Errorf("%d client errors during reorganization", stats.Errors)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("clients: %d ops, %.0f ops/s, avg %v",
		stats.Ops, stats.Throughput(), stats.AvgLatency())
}

func TestValueSizeLimit(t *testing.T) {
	db, _ := Open(Options{PageSize: 512})
	huge := make([]byte, 4096)
	if err := db.Insert([]byte("k"), huge); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestCountAndIOStats(t *testing.T) {
	db, _ := Open(Options{PageSize: 1024})
	if err := workload.Load(db, 200, 24, "seq", 1); err != nil {
		t.Fatal(err)
	}
	n, err := db.Count(workload.Key(50), workload.Key(149))
	if err != nil || n != 100 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writes := db.IOStats().Writes
	if writes == 0 {
		t.Error("checkpoint wrote nothing")
	}
	if db.LogBytes() == 0 {
		t.Error("no log volume recorded")
	}
}

func ExampleDB() {
	db, _ := Open(Options{})
	_ = db.Insert([]byte("hello"), []byte("world"))
	v, _ := db.Get([]byte("hello"))
	fmt.Println(string(v))
	// Output: world
}
