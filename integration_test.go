package repro_test

// System-level property tests: random operation scripts — inserts,
// deletes, updates, scans, the three reorganization passes, sharp
// checkpoints, and crash/restart — executed against the database and a
// model map simultaneously. After every script the tree must be
// structurally sound and hold exactly the model's records.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	repro "repro"
)

type opKind int

const (
	opInsert opKind = iota
	opDelete
	opUpdate
	opGet
	opScan
	opReorgPass1
	opReorgFull
	opCheckpoint
	opCrashRestart
	opKinds
)

// script is a reproducible operation sequence.
type script struct {
	seed int64
	ops  int
}

func runScript(s script) error {
	rng := rand.New(rand.NewSource(s.seed))
	db, err := repro.Open(repro.Options{PageSize: 1024})
	if err != nil {
		return err
	}
	model := map[string]string{}
	key := func(i int) string { return fmt.Sprintf("k%05d", i) }
	keySpace := 400

	for i := 0; i < s.ops; i++ {
		switch opKind(rng.Intn(int(opKinds))) {
		case opInsert:
			k := key(rng.Intn(keySpace))
			v := fmt.Sprintf("v%d", rng.Int31())
			err := db.Insert([]byte(k), []byte(v))
			if _, dup := model[k]; dup {
				if !errors.Is(err, repro.ErrExists) {
					return fmt.Errorf("op %d: duplicate insert of %s: %v", i, k, err)
				}
			} else if err != nil {
				return fmt.Errorf("op %d: insert %s: %w", i, k, err)
			} else {
				model[k] = v
			}
		case opDelete:
			k := key(rng.Intn(keySpace))
			err := db.Delete([]byte(k))
			if _, ok := model[k]; ok {
				if err != nil {
					return fmt.Errorf("op %d: delete %s: %w", i, k, err)
				}
				delete(model, k)
			} else if !errors.Is(err, repro.ErrNotFound) {
				return fmt.Errorf("op %d: delete missing %s: %v", i, k, err)
			}
		case opUpdate:
			k := key(rng.Intn(keySpace))
			v := fmt.Sprintf("u%d", rng.Int31())
			err := db.Update([]byte(k), []byte(v))
			if _, ok := model[k]; ok {
				if err != nil {
					return fmt.Errorf("op %d: update %s: %w", i, k, err)
				}
				model[k] = v
			} else if !errors.Is(err, repro.ErrNotFound) {
				return fmt.Errorf("op %d: update missing %s: %v", i, k, err)
			}
		case opGet:
			k := key(rng.Intn(keySpace))
			v, err := db.Get([]byte(k))
			if want, ok := model[k]; ok {
				if err != nil || string(v) != want {
					return fmt.Errorf("op %d: get %s = %q,%v want %q", i, k, v, err, want)
				}
			} else if !errors.Is(err, repro.ErrNotFound) {
				return fmt.Errorf("op %d: get missing %s: %v", i, k, err)
			}
		case opScan:
			lo := rng.Intn(keySpace)
			hi := lo + rng.Intn(keySpace-lo)
			want := 0
			for k := range model {
				if k >= key(lo) && k <= key(hi) {
					want++
				}
			}
			got := 0
			prev := ""
			err := db.Scan([]byte(key(lo)), []byte(key(hi)), func(k, _ []byte) bool {
				if prev != "" && string(k) <= prev {
					got = -1 << 30
					return false
				}
				prev = string(k)
				got++
				return true
			})
			if err != nil {
				return fmt.Errorf("op %d: scan: %w", i, err)
			}
			if got != want {
				return fmt.Errorf("op %d: scan [%d,%d] got %d want %d", i, lo, hi, got, want)
			}
		case opReorgPass1:
			r := db.Reorganizer(repro.ReorgConfig{TargetFill: 0.9,
				CarefulWriting: rng.Intn(2) == 0})
			if err := r.CompactLeaves(); err != nil {
				return fmt.Errorf("op %d: pass1: %w", i, err)
			}
		case opReorgFull:
			if _, err := db.Reorganize(repro.DefaultReorgConfig()); err != nil {
				return fmt.Errorf("op %d: reorg: %w", i, err)
			}
		case opCheckpoint:
			if err := db.Checkpoint(); err != nil {
				return fmt.Errorf("op %d: checkpoint: %w", i, err)
			}
		case opCrashRestart:
			// Committed work is durable: crash, restart, verify later.
			db.Crash()
			if _, err := db.Restart(); err != nil {
				return fmt.Errorf("op %d: restart: %w", i, err)
			}
		}
	}

	// Final verification: invariants and exact record equivalence.
	if err := db.Check(); err != nil {
		return fmt.Errorf("final check: %w", err)
	}
	got := map[string]string{}
	if err := db.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		return err
	}
	if len(got) != len(model) {
		return fmt.Errorf("final: %d records, model has %d", len(got), len(model))
	}
	for k, want := range model {
		if got[k] != want {
			return fmt.Errorf("final: %s = %q, want %q", k, got[k], want)
		}
	}
	return nil
}

// TestQuickRandomScripts is the quick-check property: any script
// preserves model equivalence.
func TestQuickRandomScripts(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		s := script{seed: seed, ops: 200 + int(opsRaw)%400}
		if err := runScript(s); err != nil {
			t.Logf("seed %d ops %d: %v", s.seed, s.ops, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFixedSeedScripts pins a few seeds for deterministic regression
// coverage of the same property.
func TestFixedSeedScripts(t *testing.T) {
	for _, seed := range []int64{1, 42, 1996, 115124} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := runScript(script{seed: seed, ops: 500}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
