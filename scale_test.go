package repro_test

// Scale test: the full pipeline at a size closer to production — 50k
// records, sparsify, full three-pass on-line reorganization under
// concurrent clients, crash, restart, verify everything. Skipped under
// -short.

import (
	"errors"
	"sync"
	"testing"
	"time"

	repro "repro"
	"repro/internal/workload"
)

func TestScaleFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped with -short")
	}
	const n = 50000
	db, err := repro.Open(repro.Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := workload.Load(db, n, 48, "random", 99); err != nil {
		t.Fatal(err)
	}
	keep, err := workload.Sparsify(db, n, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load+sparsify %d records: %v", n, time.Since(start).Round(time.Millisecond))

	before, _ := db.GatherStats()

	// Reorganize with clients running.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stats workload.ClientStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats = workload.RunClients(db, 8, 0, workload.ReadMostly, n, 48, stop)
	}()
	start = time.Now()
	counters, err := db.Reorganize(repro.DefaultReorgConfig())
	reorgDur := time.Since(start)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("reorganize: %v", err)
	}
	if stats.Errors > 0 {
		t.Fatalf("%d client errors (last: %v)", stats.Errors, stats.LastError)
	}
	after, _ := db.GatherStats()
	t.Logf("reorg of %d leaves -> %d (fill %.2f -> %.2f, height %d -> %d) in %v with %.0f client ops/s",
		before.LeafPages, after.LeafPages, before.AvgLeafFill, after.AvgLeafFill,
		before.Height, after.Height, reorgDur.Round(time.Millisecond), stats.Throughput())
	t.Logf("counters:\n%s", counters)
	// Concurrent clients insert fresh records during the run (the tree
	// legitimately grows), so assert on fill improvement, the metric
	// insert volume cannot mask.
	if after.AvgLeafFill < 0.45 {
		t.Errorf("fill %.2f -> %.2f: reorganization had little effect", before.AvgLeafFill, after.AvgLeafFill)
	}
	if after.LeafPages >= before.LeafPages {
		t.Logf("note: tree grew %d -> %d leaves from concurrent inserts", before.LeafPages, after.LeafPages)
	}

	// Crash and restart at scale.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	start = time.Now()
	if _, err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	t.Logf("restart after checkpoint: %v", time.Since(start).Round(time.Millisecond))
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}

	// Spot-verify record presence (full scan count + sampled values).
	wantBase := 0
	for i := 0; i < n; i++ {
		if keep(i) {
			wantBase++
		}
	}
	got, err := db.Count(workload.Key(0), workload.Key(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantBase {
		t.Fatalf("base records after pipeline: %d, want %d", got, wantBase)
	}
	for i := 0; i < n; i += 997 {
		v, err := db.Get(workload.Key(i))
		if keep(i) {
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if string(v) != string(workload.Value(i, 48)) {
				t.Fatalf("record %d corrupted", i)
			}
		} else if !errors.Is(err, repro.ErrNotFound) {
			t.Fatalf("deleted record %d: %v", i, err)
		}
	}
}
