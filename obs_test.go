package repro

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestObsEventsMatchCountersDuringReorg drives a Zipfian read-mostly
// mix concurrently with repeated reorganization passes, then — after
// everything quiesces — checks that the trace ring's per-type counts
// agree EXACTLY with the lock manager's counters, and that the wait
// histograms sampled exactly one duration per counted wait. The event
// emit and the counter increment sit on the same code path under the
// same mutex, so any drift is a wiring bug, not scheduling noise.
// Run with -race and -tags invariants for the full checking build.
func TestObsEventsMatchCountersDuringReorg(t *testing.T) {
	db, err := Open(Options{PageSize: 4096})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	const records = 5000
	if err := workload.Load(db, records, 64, "random", 9); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := workload.Sparsify(db, records, 0.25); err != nil {
		t.Fatalf("sparsify: %v", err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		workload.RunClientsOpts(db, workload.ClientOpts{
			Clients: 4, Mix: workload.ReadMostly, KeySpace: records,
			ValueSize: 64, ZipfS: 1.2}, stop)
	}()
	// Keep the reorganizer running against live traffic for a while so
	// forgoes and lock waits actually happen.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := db.Reorganize(DefaultReorgConfig()); err != nil {
			close(stop)
			<-done
			t.Fatalf("reorganize: %v", err)
		}
	}
	close(stop)
	<-done

	// Quiesced: every counter its matching event, exactly.
	ring := db.Obs().Trace()
	ls := db.LockStats()
	if got, want := ring.Count(obs.EvForgo), uint64(ls.Forgoes.Load()); got != want {
		t.Errorf("EvForgo events = %d, Forgoes counter = %d", got, want)
	}
	if got, want := ring.Count(obs.EvDeadlockVictim), uint64(ls.Deadlocks.Load()); got != want {
		t.Errorf("EvDeadlockVictim events = %d, Deadlocks counter = %d", got, want)
	}
	waitSamples := db.Obs().H(obs.OpUserLockWait).Count() +
		db.Obs().H(obs.OpReorgLockWait).Count()
	waitCounts := uint64(ls.UserWaits.Load() + ls.ReorgWaits.Load())
	if waitSamples != waitCounts {
		t.Errorf("lock-wait histogram samples = %d, UserWaits+ReorgWaits = %d",
			waitSamples, waitCounts)
	}
	// Every unit that began also ended (deadlocked units end after their
	// undo), and each end recorded exactly one duration sample.
	if s, e := ring.Count(obs.EvReorgUnitStart), ring.Count(obs.EvReorgUnitEnd); s != e {
		t.Errorf("reorg unit events unbalanced: %d starts, %d ends", s, e)
	}
	if h, e := db.Obs().H(obs.OpReorgUnit).Count(), ring.Count(obs.EvReorgUnitEnd); h != e {
		t.Errorf("reorg-unit histogram samples = %d, EvReorgUnitEnd events = %d", h, e)
	}
	if ring.Count(obs.EvReorgUnitEnd) == 0 {
		t.Error("no reorg units ran; the test exercised nothing")
	}
	// A forgo-wait sample is recorded after the instant-RS wait that
	// follows each forgo, so samples can never exceed forgoes.
	if fw, fg := db.Obs().H(obs.OpForgoWait).Count(), ring.Count(obs.EvForgo); fw > fg {
		t.Errorf("forgo-wait samples = %d exceed forgo events = %d", fw, fg)
	}

	// The per-op histograms saw the workload, and quantiles are sane.
	snap := db.Obs().H(obs.OpGet).Snapshot()
	if snap.Total == 0 {
		t.Fatal("get histogram empty after a read-mostly workload")
	}
	p50, p99, p999 := snap.Quantile(0.5), snap.Quantile(0.99), snap.Quantile(0.999)
	if !(p50 <= p99 && p99 <= p999 && p999 <= snap.Max()) {
		t.Errorf("quantiles out of order: p50=%v p99=%v p999=%v max=%v",
			p50, p99, p999, snap.Max())
	}

	// Occupancy gauges reflect a live tree: records present, fills in
	// (0, 1], free-map accounting consistent.
	occ, err := db.Occupancy(4)
	if err != nil {
		t.Fatalf("occupancy: %v", err)
	}
	if len(occ.Ranges) == 0 {
		t.Fatal("occupancy returned no ranges")
	}
	total := 0
	for _, r := range occ.Ranges {
		total += r.Records
		if r.Leaves > 0 && (r.AvgFill <= 0 || r.AvgFill > 1) {
			t.Errorf("range [%q, %q): avg fill %v out of (0, 1]", r.LoKey, r.HiKey, r.AvgFill)
		}
	}
	if total == 0 {
		t.Error("occupancy gauges count zero records in a populated tree")
	}
	// The free map scans ids [1, highWater): page 0 is the superblock.
	if occ.Free.Allocated+occ.Free.Free != occ.Free.HighWater-1 {
		t.Errorf("free map inconsistent: allocated %d + free %d != high water %d - 1",
			occ.Free.Allocated, occ.Free.Free, occ.Free.HighWater)
	}

	if err := db.Check(); err != nil {
		t.Fatalf("tree check after reorg under load: %v", err)
	}
}

// TestObsDisabled pins the off switch: with DisableObservability no
// set, ring, or histograms exist and the accessors degrade gracefully.
func TestObsDisabled(t *testing.T) {
	db, err := Open(Options{PageSize: 4096, DisableObservability: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if err := db.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != nil {
		t.Fatalf("get: %v", err)
	}
	if db.Obs() != nil {
		t.Fatal("Obs() non-nil with observability disabled")
	}
	if evs := db.TraceSnapshot(); evs != nil {
		t.Fatalf("TraceSnapshot returned %d events with observability disabled", len(evs))
	}
	if rows := db.LatencyQuantiles(); rows != nil {
		t.Fatalf("LatencyQuantiles returned %d rows with observability disabled", len(rows))
	}
}
