// Package repro is an implementation of Salzberg & Zou, "On-line
// Reorganization of Sparsely-populated B+-trees" (SIGMOD 1996): a
// primary-index B+-tree with record-level concurrency that can be
// reorganized — leaves compacted, placed in key order on disk, and the
// internal levels rebuilt and switched — while readers and updaters
// keep running, losing at most one page-group's worth of work at a
// crash thanks to forward recovery.
//
// The DB type bundles the simulated disk, buffer pool, write-ahead
// log, lock manager, transaction manager and tree behind a small
// surface:
//
//	db, _ := repro.Open(repro.Options{})
//	_ = db.Insert([]byte("k"), []byte("v"))
//	stats, _ := db.Reorganize(repro.DefaultReorgConfig())
//
// Crash() and Restart() expose the simulated failure semantics used by
// the recovery experiments.
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Errors surfaced by the public API.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = kv.ErrNotFound
	// ErrExists reports a duplicate insert.
	ErrExists = kv.ErrExists
	// ErrDeadlock reports the transaction was chosen as a deadlock
	// victim; abort and retry.
	ErrDeadlock = lock.ErrDeadlock
	// ErrSwitched reports the tree switched under the transaction during
	// reorganization; abort and retry.
	ErrSwitched = btree.ErrSwitched
)

// IsRetryable reports whether err means "abort the transaction and try
// again" (deadlock victimisation or a reorganization switch).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrSwitched) ||
		errors.Is(err, lock.ErrTimeout)
}

// Options configures Open.
type Options struct {
	// PageSize in bytes (default 4096, minimum 128).
	PageSize int
	// BufferPoolPages caps resident frames (0 = unbounded).
	BufferPoolPages int
	// Dir, when non-empty, selects the file backend: pages live in
	// Dir/pages.db (checksummed page frames, real fsync) and the WAL in
	// Dir/wal/ as rotated segment files. Opening a directory that
	// already holds a database runs crash recovery against its files
	// and resumes it. Empty Dir (the default) keeps everything in
	// memory with simulated crash semantics.
	Dir string
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (file backend only; default wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// GroupCommitWindow, when positive, makes a commit that must force
	// the log wait this long first so concurrent commits coalesce into
	// one forced write. Zero (the default) still coalesces commits that
	// arrive while a force is in flight, but never delays a force.
	GroupCommitWindow time.Duration
	// FaultInjector, when set, is installed at the disk, WAL, pager and
	// reorganizer fault points (see internal/fault). It survives
	// Restart: recovery runs against the same injector, so sweeps must
	// Disarm it before restarting.
	FaultInjector *fault.Injector
	// DisableObservability turns off latency histograms, the trace ring
	// and logical-byte accounting entirely (no time.Now per operation).
	// The default — observability on — costs two clock reads and one
	// atomic add per operation; this switch exists so the overhead can
	// be measured honestly (reorg-bench -bench9 does).
	DisableObservability bool
	// TraceCapacity sets the event ring size in events (rounded up to a
	// power of two; 0 = obs.DefaultTraceCap).
	TraceCapacity int
	// DebugAddr, when non-empty, serves the observability HTTP endpoint
	// on this address (":0" picks an ephemeral port — see
	// DB.DebugAddr): /metrics (JSON snapshot), /trace (event ring
	// dump), /debug/vars (expvar) and /debug/pprof.
	DebugAddr string
	// Daemon, when non-nil, wires the autonomous reorganization daemon
	// (internal/daemon) over this database: a background policy that
	// watches occupancy and free-map fragmentation and runs incremental
	// pass-1 reorganization slices, pacing itself against foreground
	// p99 and the forgo rate. Unless Daemon.Manual is set, the policy
	// loop starts immediately and Close drains it deterministically.
	Daemon *daemon.Config
	// DaemonClock injects the daemon's clock (nil = wall clock). The
	// simulation tests pass a daemon.VirtualClock so no policy decision
	// ever depends on real time.
	DaemonClock daemon.Clock
}

// ErrIO re-exports the typed permanent I/O error surfaced after the
// storage layer's transient-fault retry budget is exhausted.
var ErrIO = storage.ErrIO

// Typed corruption errors from the file backend, re-exported so
// callers can errors.Is-match them without importing the internals.
var (
	// ErrCorruptPage reports a page image whose on-disk checksum or
	// self-identification failed (torn write, bit rot).
	ErrCorruptPage = storage.ErrCorruptPage
	// ErrWALCorrupt reports mid-stream WAL damage recovery cannot
	// classify as a clean torn tail.
	ErrWALCorrupt = wal.ErrWALCorrupt
	// ErrShortWrite reports a write the OS accepted but did not
	// complete.
	ErrShortWrite = storage.ErrShortWrite
)

// ReorgConfig re-exports the reorganizer configuration.
type ReorgConfig = core.Config

// Placement re-exports the Find-Free-Space policy type.
type Placement = core.Placement

// Placement policies for Find-Free-Space (E3 ablation).
const (
	PlacementHeuristic = core.PlacementHeuristic
	PlacementFirstFit  = core.PlacementFirstFit
	PlacementInPlace   = core.PlacementInPlace
)

// DefaultReorgConfig runs all three passes with the paper's settings.
func DefaultReorgConfig() ReorgConfig { return core.DefaultConfig() }

// TreeStats re-exports physical tree statistics.
type TreeStats = btree.Stats

// DB is one database instance over a simulated disk.
type DB struct {
	mu    sync.Mutex
	disk  storage.Disk
	pager *storage.Pager
	log   *wal.Log
	locks *lock.Manager
	txns  *txn.Manager
	tree  *btree.Tree
	reorg *core.Reorganizer
	inj   *fault.Injector

	// reorgBusy serializes reorganization ownership (guarded by mu):
	// the manual Reorganize path and the daemon's increments share the
	// single-reorganizer invariant, so whichever arrives second gets
	// ErrReorgBusy instead of silently overwriting db.reorg under a
	// concurrent checkpoint.
	reorgBusy bool

	// Autonomous reorganization daemon (nil when Options.Daemon unset).
	// daemonOpts/daemonClk are kept so Restart can rebuild the daemon
	// against the recovered subsystems.
	daemon     *daemon.Daemon
	daemonOpts *daemon.Config
	daemonClk  daemon.Clock

	// obs is the observability set (nil when disabled); the h* fields
	// are its pre-resolved histogram handles, so the per-operation cost
	// is a nil check, two clock reads and one atomic add — never a
	// lookup.
	obs     *obs.Set
	hGet    *obs.Histogram
	hInsert *obs.Histogram
	hUpdate *obs.Histogram
	hDelete *obs.Histogram
	hScan   *obs.Histogram
	hCommit *obs.Histogram
	hBatch  *obs.Histogram
	debug   *obs.DebugServer
}

// wireObs resolves the histogram handles and installs the observer
// hooks on the current lock manager, log, pager and tree. Called at
// Open and again after Restart (recovery rebuilds those subsystems).
func (db *DB) wireObs() {
	if db.obs == nil {
		return
	}
	db.hGet = db.obs.H(obs.OpGet)
	db.hInsert = db.obs.H(obs.OpInsert)
	db.hUpdate = db.obs.H(obs.OpUpdate)
	db.hDelete = db.obs.H(obs.OpDelete)
	db.hScan = db.obs.H(obs.OpScan)
	db.hCommit = db.obs.H(obs.OpCommit)
	db.hBatch = db.obs.H(obs.OpInsertBatch)
	ring := db.obs.Trace()
	db.locks.SetObserver(db.obs.H(obs.OpUserLockWait), db.obs.H(obs.OpReorgLockWait), ring)
	db.log.SetObserver(ring)
	db.pager.SetObserver(ring)
	db.tree.SetObserver(db.obs.H(obs.OpForgoWait), ring)
}

// emitRecovery traces what a restart did (phase events carry the
// Result's counts; emitted post-hoc because recovery rebuilds the very
// subsystems the observer hangs off).
func (db *DB) emitRecovery(res *recovery.Result) {
	if db.obs == nil {
		return
	}
	ring := db.obs.Trace()
	ring.Emit(obs.EvRecoveryRedo, uint64(res.RedoneRecords), 0)
	ring.Emit(obs.EvRecoveryUndo, uint64(res.LosersUndone), 0)
	if res.UnitCompleted {
		ring.Emit(obs.EvRecoveryForward, res.CompletedUnit, 0)
	} else {
		ring.Emit(obs.EvRecoveryForward, 0, 0)
	}
}

// Open creates a fresh database (Options.Dir empty), or opens — and,
// if needed, crash-recovers — the file-backed database in Options.Dir.
func Open(opts Options) (*DB, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	db := &DB{inj: opts.FaultInjector}
	if !opts.DisableObservability {
		cap := opts.TraceCapacity
		if cap <= 0 {
			cap = obs.DefaultTraceCap
		}
		db.obs = obs.NewSet(cap)
	}
	existing := false
	if opts.Dir == "" {
		db.log = wal.NewLog()
		db.disk = storage.NewDisk(opts.PageSize)
	} else {
		walDir := filepath.Join(opts.Dir, "wal")
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return nil, fmt.Errorf("repro: open %s: %w", opts.Dir, err)
		}
		log, err := wal.OpenSegmentedLog(walDir, wal.SegmentOptions{SegmentBytes: opts.WALSegmentBytes})
		if err != nil {
			return nil, err
		}
		disk, err := storage.OpenFileDisk(filepath.Join(opts.Dir, "pages.db"), opts.PageSize)
		if err != nil {
			log.Close()
			return nil, err
		}
		db.log = log
		db.disk = disk
		// Any stable page beyond the reserved page 0 means a database
		// already lives here: recover it instead of formatting over it.
		existing = disk.NumPages() > 1
	}
	db.log.SetInjector(db.inj)
	db.log.SetGroupCommitWindow(opts.GroupCommitWindow)
	db.disk.SetInjector(db.inj)
	if existing {
		res, err := recovery.Restart(db.disk, db.log)
		if err != nil {
			_ = db.log.Close()
			_ = db.disk.Close()
			return nil, err
		}
		db.pager = res.Pager
		db.pager.SetInjector(db.inj)
		db.locks = res.Locks
		db.txns = res.Txns
		db.tree = res.Tree
		db.wireObs()
		db.emitRecovery(res)
		db.initDaemon(opts)
		return db, db.startDebug(opts.DebugAddr)
	}
	db.pager = storage.NewPager(db.disk, opts.BufferPoolPages, db.log)
	db.pager.SetInjector(db.inj)
	db.locks = lock.NewManager()
	db.txns = txn.NewManager(db.log, db.locks, db.pager)
	tree, err := btree.Create(db.pager, db.log, db.locks, db.txns)
	if err != nil {
		_ = db.pager.Close()
		_ = db.log.Close()
		return nil, err
	}
	db.tree = tree
	db.wireObs()
	db.initDaemon(opts)
	return db, db.startDebug(opts.DebugAddr)
}

// initDaemon wires (and, unless manual, starts) the autonomous
// reorganization daemon. The options are kept so Restart can rebuild
// it over the recovered subsystems.
func (db *DB) initDaemon(opts Options) {
	if opts.Daemon == nil {
		return
	}
	db.daemonOpts = opts.Daemon
	db.daemonClk = opts.DaemonClock
	db.daemon = daemon.New(db, *opts.Daemon, opts.DaemonClock, db.inj)
	db.daemon.Start()
}

// startDebug launches the observability HTTP endpoint when configured.
func (db *DB) startDebug(addr string) error {
	if addr == "" {
		return nil
	}
	if db.obs == nil {
		return fmt.Errorf("repro: DebugAddr requires observability (DisableObservability must be false)")
	}
	srv, err := obs.StartDebug(addr, db.MetricsSnapshot, db.TraceSnapshot)
	if err != nil {
		_ = db.Close()
		return err
	}
	db.debug = srv
	return nil
}

// Txn is one transaction over the database.
type Txn struct {
	db    *DB
	inner *txn.Txn
	itxn  txn.Txn // inner points here; embedded to make Begin one allocation
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	t := &Txn{db: db}
	t.inner = db.txns.BeginAt(&t.itxn)
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.inner.ID() }

// Insert adds a record; ErrExists for duplicates.
func (t *Txn) Insert(key, val []byte) error {
	return t.db.tree.Insert(t.inner, key, val)
}

// Get returns the value for key (nil, ErrNotFound when absent).
func (t *Txn) Get(key []byte) ([]byte, error) {
	v, ok, err := t.db.tree.Get(t.inner, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	return v, nil
}

// InsertBatch adds many records through shared descents: the batch is
// applied in key order, one leaf latch and log sequence per run of
// consecutive keys. Duplicates (in the batch or the tree) fail with
// ErrExists; on error, already-applied records remain until the
// transaction aborts.
func (t *Txn) InsertBatch(keys, vals [][]byte) error {
	return t.db.tree.InsertBatch(t.inner, keys, vals)
}

// Update replaces an existing record's value.
func (t *Txn) Update(key, val []byte) error {
	return t.db.tree.Update(t.inner, key, val)
}

// Delete removes a record.
func (t *Txn) Delete(key []byte) error {
	return t.db.tree.Delete(t.inner, key)
}

// Scan streams records with lo <= key <= hi (hi nil = unbounded) in
// key order until fn returns false.
func (t *Txn) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	return t.db.tree.Scan(t.inner, lo, hi, fn)
}

// Commit commits (running deferred free-at-empty work first).
// Read-only transactions (no log records) are not worth a histogram
// sample: the commit is a lock release, and counting it would drown the
// durability cost the commit histogram exists to show.
func (t *Txn) Commit() error {
	h := t.db.hCommit
	if h == nil || t.inner.LastLSN() == 0 {
		return t.db.tree.Commit(t.inner)
	}
	start := time.Now()
	err := t.db.tree.Commit(t.inner)
	h.Record(time.Since(start))
	return err
}

// Abort rolls the transaction back.
func (t *Txn) Abort() error { return t.db.tree.Abort(t.inner) }

// --- single-operation conveniences (auto-commit, retry on conflicts) ---

const maxAutoRetries = 100

func (db *DB) auto(fn func(t *Txn) error) error {
	var last error
	for i := 0; i < maxAutoRetries; i++ {
		t := db.Begin()
		err := fn(t)
		if err == nil {
			if cerr := t.Commit(); cerr == nil {
				return nil
			} else if !IsRetryable(cerr) {
				return cerr
			} else {
				// A retryable commit failure (deferred-free conflict)
				// leaves the transaction active: roll it back so its
				// locks don't outlive this attempt.
				_ = t.Abort()
				last = cerr
			}
			backoff(i)
			continue
		}
		_ = t.Abort()
		if !IsRetryable(err) {
			return err
		}
		last = err
		backoff(i)
	}
	// Keep the last underlying error in the chain so callers can tell
	// deadlock churn (ErrDeadlock) from switch churn (ErrSwitched).
	return fmt.Errorf("repro: operation did not converge after %d retries: %w",
		maxAutoRetries, last)
}

// backoffRNG seeds the retry jitter. Deterministic seed: tests get
// reproducible schedules; concurrent clients still spread out because
// each drawn jitter differs.
var (
	backoffMu  sync.Mutex
	backoffRNG = rand.New(rand.NewSource(0xb0ff))
)

// backoff sleeps briefly between transaction retries: a hot retry loop
// during the reorganizer's switch window would otherwise burn through
// the retry budget in microseconds. The jitter keeps clients that were
// all rejected by the same switch window from retrying in lockstep and
// colliding again.
func backoff(attempt int) {
	d := time.Duration(attempt) * 100 * time.Microsecond
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d <= 0 {
		return
	}
	backoffMu.Lock()
	jitter := time.Duration(backoffRNG.Int63n(int64(d)/2 + 1))
	backoffMu.Unlock()
	time.Sleep(d/2 + jitter)
}

// timedAuto runs fn as an auto-commit transaction, recording the whole
// operation — descent, locks, commit, every retry — into h. With
// observability off (h nil) there is no clock read at all.
func (db *DB) timedAuto(h *obs.Histogram, fn func(t *Txn) error) error {
	if h == nil {
		return db.auto(fn)
	}
	start := time.Now()
	err := db.auto(fn)
	h.Record(time.Since(start))
	return err
}

// Insert adds a record in its own transaction.
func (db *DB) Insert(key, val []byte) error {
	err := db.timedAuto(db.hInsert, func(t *Txn) error { return t.Insert(key, val) })
	if err == nil && db.obs != nil {
		db.obs.AddLogicalBytes(len(key) + len(val))
	}
	return err
}

// Get reads a record in its own transaction.
func (db *DB) Get(key []byte) ([]byte, error) {
	var out []byte
	err := db.timedAuto(db.hGet, func(t *Txn) error {
		v, err := t.Get(key)
		out = v
		return err
	})
	return out, err
}

// InsertBatch adds many records in one transaction, amortising tree
// descents and leaf latching across runs of consecutive keys. The
// batch commits or rolls back atomically.
func (db *DB) InsertBatch(keys, vals [][]byte) error {
	err := db.timedAuto(db.hBatch, func(t *Txn) error { return t.InsertBatch(keys, vals) })
	if err == nil && db.obs != nil {
		n := 0
		for i := range keys {
			n += len(keys[i]) + len(vals[i])
		}
		db.obs.AddLogicalBytes(n)
	}
	return err
}

// Update replaces a record in its own transaction.
func (db *DB) Update(key, val []byte) error {
	err := db.timedAuto(db.hUpdate, func(t *Txn) error { return t.Update(key, val) })
	if err == nil && db.obs != nil {
		db.obs.AddLogicalBytes(len(key) + len(val))
	}
	return err
}

// Delete removes a record in its own transaction.
func (db *DB) Delete(key []byte) error {
	err := db.timedAuto(db.hDelete, func(t *Txn) error { return t.Delete(key) })
	if err == nil && db.obs != nil {
		db.obs.AddLogicalBytes(len(key))
	}
	return err
}

// Scan runs a range scan in its own transaction.
func (db *DB) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	return db.timedAuto(db.hScan, func(t *Txn) error { return t.Scan(lo, hi, fn) })
}

// Count counts records in [lo, hi].
func (db *DB) Count(lo, hi []byte) (int, error) {
	n := 0
	err := db.Scan(lo, hi, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// --- reorganization ---

// ErrReorgBusy reports that a reorganization (manual or
// daemon-initiated) is already running on this database.
var ErrReorgBusy = errors.New("repro: a reorganization is already running")

// acquireReorg claims the single-reorganizer slot and publishes r for
// checkpoints; releaseReorg returns the slot. Claiming while another
// reorganization runs fails with ErrReorgBusy.
func (db *DB) acquireReorg(r *core.Reorganizer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.reorgBusy {
		return ErrReorgBusy
	}
	db.reorgBusy = true
	db.reorg = r
	return nil
}

func (db *DB) releaseReorg() {
	db.mu.Lock()
	db.reorgBusy = false
	db.reorg = nil
	db.mu.Unlock()
}

// Reorganize runs the configured passes on-line and returns the
// reorganizer's counters. It fails with ErrReorgBusy while another
// reorganization (including a daemon increment) is in flight.
func (db *DB) Reorganize(cfg ReorgConfig) (*metrics.Counters, error) {
	if cfg.Injector == nil {
		cfg.Injector = db.inj
	}
	if cfg.Obs == nil {
		cfg.Obs = db.obs
	}
	r := core.New(db.tree, cfg)
	if err := db.acquireReorg(r); err != nil {
		return nil, err
	}
	defer db.releaseReorg()
	err := r.Run()
	return r.Metrics(), err
}

// RunIncrement implements daemon.System: one bounded pass-1 slice
// through the regular reorganization machinery, sharing the
// single-reorganizer slot with Reorganize so concurrent checkpoints
// include the in-flight unit's reorg table.
func (db *DB) RunIncrement(inc daemon.Increment) (daemon.RunResult, error) {
	var target float64
	if db.daemonOpts != nil {
		target = db.daemon.Config().TargetFill
	}
	cfg := core.Config{TargetFill: target, CarefulWriting: true,
		StartKey: inc.StartKey, EndKey: inc.EndKey,
		MaxUnits: inc.MaxUnits, Yield: inc.Yield,
		Injector: db.inj, Obs: db.obs}
	r := core.New(db.tree, cfg)
	if err := db.acquireReorg(r); err != nil {
		return daemon.RunResult{}, err
	}
	defer db.releaseReorg()
	err := r.CompactLeaves()
	return daemon.RunResult{Stopped: r.Stopped(), LK: r.LK(),
		UnitsRun: r.UnitsRun(), MaxUnits: inc.MaxUnits}, err
}

// GetHistogram implements daemon.System: the cumulative foreground
// get-latency histogram (nil when observability is off).
func (db *DB) GetHistogram() *obs.Histogram { return db.hGet }

// ForgoCount implements daemon.System: cumulative reader forgoes.
func (db *DB) ForgoCount() int64 { return db.locks.Stats().Forgoes.Load() }

// Mutations implements daemon.System: cumulative mutating operations.
func (db *DB) Mutations() uint64 {
	if db.obs == nil {
		return 0
	}
	return db.hInsert.Count() + db.hUpdate.Count() +
		db.hDelete.Count() + db.hBatch.Count()
}

// TraceRing implements daemon.System: the shared event ring (nil when
// observability is off).
func (db *DB) TraceRing() *obs.Ring {
	if db.obs == nil {
		return nil
	}
	return db.obs.Trace()
}

// Daemon returns the autonomous reorganization daemon, or nil when
// Options.Daemon was unset. In manual mode the caller drives it via
// Daemon().Tick().
func (db *DB) Daemon() *daemon.Daemon { return db.daemon }

// Reorganizer creates (without running) a reorganizer for fine-grained
// control — individual passes, crash hooks, metrics.
func (db *DB) Reorganizer(cfg ReorgConfig) *core.Reorganizer {
	if cfg.Injector == nil {
		cfg.Injector = db.inj
	}
	if cfg.Obs == nil {
		cfg.Obs = db.obs
	}
	return core.New(db.tree, cfg)
}

// Tree exposes the underlying B+-tree (experiments and tools).
func (db *DB) Tree() *btree.Tree { return db.tree }

// --- durability and crash simulation ---

// Checkpoint flushes all dirty pages and logs a sharp checkpoint (the
// reorg table included when a reorganization is running). A quiescent
// checkpoint — no active transactions, no reorganization in flight —
// additionally applies WAL retention on the file backend: recovery
// never reads below such a checkpoint (no loser undo chain and no
// unit BEGIN can reach under it), so segments wholly below it are
// deleted.
func (db *DB) Checkpoint() error {
	if err := db.pager.FlushAll(); err != nil {
		return err
	}
	cp := wal.Checkpoint{
		ActiveTxns: db.txns.ActiveSnapshot(),
		NextTxnID:  db.txns.NextID(),
	}
	db.mu.Lock()
	reorging := db.reorg != nil
	if reorging {
		cp.Reorg = db.reorg.TableSnapshot()
		cp.Pass3 = db.reorg.Pass3Snapshot()
		cp.NextUnit = db.reorg.NextUnit()
	}
	db.mu.Unlock()
	lsn := db.log.Append(cp)
	if err := db.log.FlushTo(lsn); err != nil {
		return err
	}
	quiescent := !reorging && len(cp.ActiveTxns) == 0
	if db.obs != nil {
		q := uint64(0)
		if quiescent {
			q = 1
		}
		db.obs.Trace().Emit(obs.EvCheckpoint, lsn, q)
	}
	if quiescent {
		return db.log.TruncateBelow(lsn)
	}
	return nil
}

// Close shuts the database down cleanly: the log is forced, dirty
// pages are flushed, the buffer pool is verified quiescent — a pin
// leaked anywhere in the session surfaces here as an error — and every
// file handle is released. The handle-closing steps run even when an
// earlier step failed (a read-only directory must not leak
// descriptors); all failures are joined into the returned error.
func (db *DB) Close() error {
	// Stop the reorganization daemon first and deterministically: its
	// stop signal doubles as every in-flight increment's Yield hook, so
	// the running slice drains at its next unit boundary before the
	// pager and log go away underneath it.
	if db.daemon != nil {
		db.daemon.Stop()
	}
	if db.debug != nil {
		_ = db.debug.Close()
		db.debug = nil
	}
	flushErr := db.log.Flush()
	var pageErr error
	if flushErr == nil {
		pageErr = db.pager.FlushAll()
	}
	db.tree.Close() // drop the cached root pin before the pool's leak check
	return errors.Join(flushErr, pageErr, db.pager.Close(), db.log.Close())
}

// Crash simulates a system failure: all buffered pages and the
// unforced log tail are lost; only the disk and the durable log
// survive. Call Restart to recover.
func (db *DB) Crash() {
	// The daemon does not survive a crash; recovery rebuilds it with
	// fresh sensor state (Restart).
	if db.daemon != nil {
		db.daemon.Stop()
		db.daemon = nil
	}
	db.log.Crash()
	db.pager.Crash()
}

// RestartInfo reports what recovery did.
type RestartInfo = recovery.Result

// Restart recovers the database after Crash: redo, loser rollback,
// forward recovery of an in-flight reorganization unit, and pass-3
// reconciliation. The DB's internals are replaced by the recovered
// instances.
func (db *DB) Restart() (*RestartInfo, error) {
	res, err := recovery.Restart(db.disk, db.log)
	if err != nil {
		return nil, err
	}
	db.pager = res.Pager
	// The disk and log carry the injector across the restart; the
	// rebuilt pager needs it re-installed.
	db.pager.SetInjector(db.inj)
	db.locks = res.Locks
	db.txns = res.Txns
	db.tree = res.Tree
	// Recovery rebuilt every observed subsystem: re-install the hooks.
	db.wireObs()
	// Any reorganization in flight at the crash died with it (forward
	// recovery already settled its unit), so the busy slot is free
	// again; the daemon restarts with fresh sensor state.
	db.mu.Lock()
	db.reorgBusy = false
	db.reorg = nil
	db.mu.Unlock()
	if db.daemonOpts != nil {
		db.daemon = daemon.New(db, *db.daemonOpts, db.daemonClk, db.inj)
		db.daemon.Start()
	}
	db.emitRecovery(res)
	return res, nil
}

// --- observability ---

// GatherStats walks the quiescent tree for physical statistics.
func (db *DB) GatherStats() (TreeStats, error) { return db.tree.GatherStats() }

// Check verifies structural invariants (quiescent tree).
func (db *DB) Check() error { return db.tree.Check() }

// IOSnapshot re-exports the versioned disk-statistics snapshot: new
// fields grow on the struct instead of numbered accessor variants.
type IOSnapshot = storage.IOSnapshot

// IOStats returns the cumulative disk statistics — reads, writes,
// seeks, byte volumes and fsyncs — as one struct.
func (db *DB) IOStats() IOSnapshot { return db.disk.Stats().Snapshot() }

// IOStats3 returns cumulative reads, writes and seeks in one call.
//
// Deprecated: use IOStats, which returns every counter in one struct.
func (db *DB) IOStats3() (reads, writes, seeks int64) {
	s := db.disk.Stats().Snapshot()
	return s.Reads, s.Writes, s.Seeks
}

// Seeks returns the number of non-sequential disk reads (pass 2's
// contiguity benefit shows up here).
func (db *DB) Seeks() int64 { return db.disk.Stats().Seeks.Load() }

// LogBytes returns the total log volume appended.
func (db *DB) LogBytes() int64 { return db.log.BytesAppended() }

// LockStats exposes the lock manager's contention counters.
func (db *DB) LockStats() *lock.Stats { return db.locks.Stats() }

// PerfCounters snapshots the concurrent-hot-path counters: buffer-pool
// shard traffic (hits, misses, CLOCK eviction work, shard-mutex
// contention) and WAL group-commit effectiveness (forced writes
// performed vs. saved, batch volume). All sources are atomics, so the
// snapshot never contends with running transactions.
func (db *DB) PerfCounters() *metrics.Counters {
	c := metrics.New()
	ps := db.pager.Stats()
	c.Add(metrics.PoolShards, int64(db.pager.ShardCount()))
	c.Add(metrics.PoolHits, ps.Hits.Load())
	c.Add(metrics.PoolMisses, ps.Misses.Load())
	c.Add(metrics.PoolEvictions, ps.Evictions.Load())
	c.Add(metrics.PoolDirtyEvictions, ps.DirtyEvictions.Load())
	c.Add(metrics.PoolEvictionScans, ps.EvictionScans.Load())
	c.Add(metrics.PoolShardContention, ps.ShardContention.Load())
	c.Add(metrics.WALBytesAppended, db.log.BytesAppended())
	c.Add(metrics.WALForcedWrites, db.log.ForcedWrites())
	c.Add(metrics.WALForcesSaved, db.log.ForcesSaved())
	c.Add(metrics.WALGroupLeaders, db.log.GroupLeaders())
	c.Add(metrics.WALBytesForced, db.log.BytesForced())
	ds := db.disk.Stats().Snapshot()
	c.Add(metrics.DiskBytesRead, ds.BytesRead)
	c.Add(metrics.DiskBytesWritten, ds.BytesWritten)
	c.Add(metrics.DiskFsyncs, ds.Fsyncs)
	c.Add(metrics.WALFsyncs, db.log.Fsyncs())
	sc, sd, sl := db.log.SegmentCounts()
	c.Add(metrics.WALSegsCreated, sc)
	c.Add(metrics.WALSegsDeleted, sd)
	c.Add(metrics.WALSegsLive, sl)
	if db.daemon != nil {
		for name, v := range db.daemon.Metrics().Snapshot() {
			c.Add(name, v)
		}
	}
	return c
}

// PageSize returns the database page size.
func (db *DB) PageSize() int { return db.pager.PageSize() }

// Obs exposes the observability set (nil when disabled) — the
// benchmarks and tools read histograms and the trace ring through it.
func (db *DB) Obs() *obs.Set { return db.obs }

// LatencyQuantiles returns one quantile row (count, p50/p90/p99/p999,
// max) per operation kind that has recorded at least one sample. Nil
// when observability is disabled.
func (db *DB) LatencyQuantiles() []obs.QuantileRow {
	if db.obs == nil {
		return nil
	}
	return db.obs.Quantiles()
}

// TraceSnapshot returns the events currently held in the trace ring,
// oldest first (at most Options.TraceCapacity; older events have been
// overwritten). Nil when observability is disabled.
func (db *DB) TraceSnapshot() []obs.Event {
	if db.obs == nil {
		return nil
	}
	return db.obs.Trace().Snapshot()
}

// Occupancy walks the live tree's leaf chain and aggregates fill and
// contiguity gauges into at most n contiguous key ranges, plus the
// free-space map's view of the file. Best-effort under concurrency.
func (db *DB) Occupancy(n int) (obs.Occupancy, error) {
	var out obs.Occupancy
	ranges, err := db.tree.GatherRangeOccupancy(n)
	if err != nil {
		return out, err
	}
	for _, r := range ranges {
		out.Ranges = append(out.Ranges, obs.RangeGauge{
			LoKey: string(r.LoKey), HiKey: string(r.HiKey),
			Leaves: r.Leaves, Records: r.Records,
			AvgFill: r.AvgFill, MinFill: r.MinFill,
			Pairs: r.Pairs, ContigPairs: r.ContiguousPairs,
			Inversions: r.OutOfOrderPairs,
		})
	}
	fs := db.pager.FreeMapStats()
	out.Free = obs.FreeSpace{HighWater: fs.HighWater, Allocated: fs.Allocated,
		Free: fs.Free, FreeRuns: fs.FreeRuns, LargestFreeRun: fs.LargestFreeRun}
	return out, nil
}

// WriteAmp reports write amplification: logical bytes the application
// wrote versus WAL bytes appended and page bytes written to disk.
// Meaningful only with observability on (logical bytes otherwise 0).
func (db *DB) WriteAmp() obs.WriteAmp {
	var w obs.WriteAmp
	if db.obs != nil {
		w.LogicalBytes = db.obs.LogicalBytes()
	}
	w.WALBytes = db.log.BytesAppended()
	w.PageBytes = db.disk.Stats().Snapshot().BytesWritten
	w.Fill()
	return w
}

// MetricsSnapshot bundles the full observability state — perf counters,
// latency quantiles, occupancy gauges, write amplification and the
// trace-ring event count — for the debug endpoint and btree-inspect.
func (db *DB) MetricsSnapshot() obs.MetricsSnapshot {
	snap := obs.MetricsSnapshot{
		TSUnixNano: time.Now().UnixNano(),
		Counters:   db.PerfCounters().Snapshot(),
		Latencies:  db.LatencyQuantiles(),
	}
	wa := db.WriteAmp()
	snap.WriteAmp = &wa
	if db.obs != nil {
		snap.Events = db.obs.Trace().Emitted()
	}
	if occ, err := db.Occupancy(8); err == nil {
		snap.Occupancy = &occ
	}
	return snap
}

// DebugAddr returns the bound address of the observability HTTP
// endpoint ("" when Options.DebugAddr was not set).
func (db *DB) DebugAddr() string {
	if db.debug == nil {
		return ""
	}
	return db.debug.Addr()
}
