// Package repro is an implementation of Salzberg & Zou, "On-line
// Reorganization of Sparsely-populated B+-trees" (SIGMOD 1996): a
// primary-index B+-tree with record-level concurrency that can be
// reorganized — leaves compacted, placed in key order on disk, and the
// internal levels rebuilt and switched — while readers and updaters
// keep running, losing at most one page-group's worth of work at a
// crash thanks to forward recovery.
//
// The DB type bundles the simulated disk, buffer pool, write-ahead
// log, lock manager, transaction manager and tree behind a small
// surface:
//
//	db, _ := repro.Open(repro.Options{})
//	_ = db.Insert([]byte("k"), []byte("v"))
//	stats, _ := db.Reorganize(repro.DefaultReorgConfig())
//
// Crash() and Restart() expose the simulated failure semantics used by
// the recovery experiments.
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kv"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Errors surfaced by the public API.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = kv.ErrNotFound
	// ErrExists reports a duplicate insert.
	ErrExists = kv.ErrExists
	// ErrDeadlock reports the transaction was chosen as a deadlock
	// victim; abort and retry.
	ErrDeadlock = lock.ErrDeadlock
	// ErrSwitched reports the tree switched under the transaction during
	// reorganization; abort and retry.
	ErrSwitched = btree.ErrSwitched
)

// IsRetryable reports whether err means "abort the transaction and try
// again" (deadlock victimisation or a reorganization switch).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrSwitched) ||
		errors.Is(err, lock.ErrTimeout)
}

// Options configures Open.
type Options struct {
	// PageSize in bytes (default 4096, minimum 128).
	PageSize int
	// BufferPoolPages caps resident frames (0 = unbounded).
	BufferPoolPages int
	// Dir, when non-empty, selects the file backend: pages live in
	// Dir/pages.db (checksummed page frames, real fsync) and the WAL in
	// Dir/wal/ as rotated segment files. Opening a directory that
	// already holds a database runs crash recovery against its files
	// and resumes it. Empty Dir (the default) keeps everything in
	// memory with simulated crash semantics.
	Dir string
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (file backend only; default wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// GroupCommitWindow, when positive, makes a commit that must force
	// the log wait this long first so concurrent commits coalesce into
	// one forced write. Zero (the default) still coalesces commits that
	// arrive while a force is in flight, but never delays a force.
	GroupCommitWindow time.Duration
	// FaultInjector, when set, is installed at the disk, WAL, pager and
	// reorganizer fault points (see internal/fault). It survives
	// Restart: recovery runs against the same injector, so sweeps must
	// Disarm it before restarting.
	FaultInjector *fault.Injector
}

// ErrIO re-exports the typed permanent I/O error surfaced after the
// storage layer's transient-fault retry budget is exhausted.
var ErrIO = storage.ErrIO

// Typed corruption errors from the file backend, re-exported so
// callers can errors.Is-match them without importing the internals.
var (
	// ErrCorruptPage reports a page image whose on-disk checksum or
	// self-identification failed (torn write, bit rot).
	ErrCorruptPage = storage.ErrCorruptPage
	// ErrWALCorrupt reports mid-stream WAL damage recovery cannot
	// classify as a clean torn tail.
	ErrWALCorrupt = wal.ErrWALCorrupt
	// ErrShortWrite reports a write the OS accepted but did not
	// complete.
	ErrShortWrite = storage.ErrShortWrite
)

// ReorgConfig re-exports the reorganizer configuration.
type ReorgConfig = core.Config

// Placement re-exports the Find-Free-Space policy type.
type Placement = core.Placement

// Placement policies for Find-Free-Space (E3 ablation).
const (
	PlacementHeuristic = core.PlacementHeuristic
	PlacementFirstFit  = core.PlacementFirstFit
	PlacementInPlace   = core.PlacementInPlace
)

// DefaultReorgConfig runs all three passes with the paper's settings.
func DefaultReorgConfig() ReorgConfig { return core.DefaultConfig() }

// TreeStats re-exports physical tree statistics.
type TreeStats = btree.Stats

// DB is one database instance over a simulated disk.
type DB struct {
	mu    sync.Mutex
	disk  storage.Disk
	pager *storage.Pager
	log   *wal.Log
	locks *lock.Manager
	txns  *txn.Manager
	tree  *btree.Tree
	reorg *core.Reorganizer
	inj   *fault.Injector
}

// Open creates a fresh database (Options.Dir empty), or opens — and,
// if needed, crash-recovers — the file-backed database in Options.Dir.
func Open(opts Options) (*DB, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	db := &DB{inj: opts.FaultInjector}
	existing := false
	if opts.Dir == "" {
		db.log = wal.NewLog()
		db.disk = storage.NewDisk(opts.PageSize)
	} else {
		walDir := filepath.Join(opts.Dir, "wal")
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return nil, fmt.Errorf("repro: open %s: %w", opts.Dir, err)
		}
		log, err := wal.OpenSegmentedLog(walDir, wal.SegmentOptions{SegmentBytes: opts.WALSegmentBytes})
		if err != nil {
			return nil, err
		}
		disk, err := storage.OpenFileDisk(filepath.Join(opts.Dir, "pages.db"), opts.PageSize)
		if err != nil {
			log.Close()
			return nil, err
		}
		db.log = log
		db.disk = disk
		// Any stable page beyond the reserved page 0 means a database
		// already lives here: recover it instead of formatting over it.
		existing = disk.NumPages() > 1
	}
	db.log.SetInjector(db.inj)
	db.log.SetGroupCommitWindow(opts.GroupCommitWindow)
	db.disk.SetInjector(db.inj)
	if existing {
		res, err := recovery.Restart(db.disk, db.log)
		if err != nil {
			_ = db.log.Close()
			_ = db.disk.Close()
			return nil, err
		}
		db.pager = res.Pager
		db.pager.SetInjector(db.inj)
		db.locks = res.Locks
		db.txns = res.Txns
		db.tree = res.Tree
		return db, nil
	}
	db.pager = storage.NewPager(db.disk, opts.BufferPoolPages, db.log)
	db.pager.SetInjector(db.inj)
	db.locks = lock.NewManager()
	db.txns = txn.NewManager(db.log, db.locks, db.pager)
	tree, err := btree.Create(db.pager, db.log, db.locks, db.txns)
	if err != nil {
		_ = db.pager.Close()
		_ = db.log.Close()
		return nil, err
	}
	db.tree = tree
	return db, nil
}

// Txn is one transaction over the database.
type Txn struct {
	db    *DB
	inner *txn.Txn
	itxn  txn.Txn // inner points here; embedded to make Begin one allocation
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	t := &Txn{db: db}
	t.inner = db.txns.BeginAt(&t.itxn)
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.inner.ID() }

// Insert adds a record; ErrExists for duplicates.
func (t *Txn) Insert(key, val []byte) error {
	return t.db.tree.Insert(t.inner, key, val)
}

// Get returns the value for key (nil, ErrNotFound when absent).
func (t *Txn) Get(key []byte) ([]byte, error) {
	v, ok, err := t.db.tree.Get(t.inner, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	return v, nil
}

// InsertBatch adds many records through shared descents: the batch is
// applied in key order, one leaf latch and log sequence per run of
// consecutive keys. Duplicates (in the batch or the tree) fail with
// ErrExists; on error, already-applied records remain until the
// transaction aborts.
func (t *Txn) InsertBatch(keys, vals [][]byte) error {
	return t.db.tree.InsertBatch(t.inner, keys, vals)
}

// Update replaces an existing record's value.
func (t *Txn) Update(key, val []byte) error {
	return t.db.tree.Update(t.inner, key, val)
}

// Delete removes a record.
func (t *Txn) Delete(key []byte) error {
	return t.db.tree.Delete(t.inner, key)
}

// Scan streams records with lo <= key <= hi (hi nil = unbounded) in
// key order until fn returns false.
func (t *Txn) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	return t.db.tree.Scan(t.inner, lo, hi, fn)
}

// Commit commits (running deferred free-at-empty work first).
func (t *Txn) Commit() error { return t.db.tree.Commit(t.inner) }

// Abort rolls the transaction back.
func (t *Txn) Abort() error { return t.db.tree.Abort(t.inner) }

// --- single-operation conveniences (auto-commit, retry on conflicts) ---

const maxAutoRetries = 100

func (db *DB) auto(fn func(t *Txn) error) error {
	var last error
	for i := 0; i < maxAutoRetries; i++ {
		t := db.Begin()
		err := fn(t)
		if err == nil {
			if cerr := t.Commit(); cerr == nil {
				return nil
			} else if !IsRetryable(cerr) {
				return cerr
			} else {
				// A retryable commit failure (deferred-free conflict)
				// leaves the transaction active: roll it back so its
				// locks don't outlive this attempt.
				_ = t.Abort()
				last = cerr
			}
			backoff(i)
			continue
		}
		_ = t.Abort()
		if !IsRetryable(err) {
			return err
		}
		last = err
		backoff(i)
	}
	// Keep the last underlying error in the chain so callers can tell
	// deadlock churn (ErrDeadlock) from switch churn (ErrSwitched).
	return fmt.Errorf("repro: operation did not converge after %d retries: %w",
		maxAutoRetries, last)
}

// backoffRNG seeds the retry jitter. Deterministic seed: tests get
// reproducible schedules; concurrent clients still spread out because
// each drawn jitter differs.
var (
	backoffMu  sync.Mutex
	backoffRNG = rand.New(rand.NewSource(0xb0ff))
)

// backoff sleeps briefly between transaction retries: a hot retry loop
// during the reorganizer's switch window would otherwise burn through
// the retry budget in microseconds. The jitter keeps clients that were
// all rejected by the same switch window from retrying in lockstep and
// colliding again.
func backoff(attempt int) {
	d := time.Duration(attempt) * 100 * time.Microsecond
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d <= 0 {
		return
	}
	backoffMu.Lock()
	jitter := time.Duration(backoffRNG.Int63n(int64(d)/2 + 1))
	backoffMu.Unlock()
	time.Sleep(d/2 + jitter)
}

// Insert adds a record in its own transaction.
func (db *DB) Insert(key, val []byte) error {
	return db.auto(func(t *Txn) error { return t.Insert(key, val) })
}

// Get reads a record in its own transaction.
func (db *DB) Get(key []byte) ([]byte, error) {
	var out []byte
	err := db.auto(func(t *Txn) error {
		v, err := t.Get(key)
		out = v
		return err
	})
	return out, err
}

// InsertBatch adds many records in one transaction, amortising tree
// descents and leaf latching across runs of consecutive keys. The
// batch commits or rolls back atomically.
func (db *DB) InsertBatch(keys, vals [][]byte) error {
	return db.auto(func(t *Txn) error { return t.InsertBatch(keys, vals) })
}

// Update replaces a record in its own transaction.
func (db *DB) Update(key, val []byte) error {
	return db.auto(func(t *Txn) error { return t.Update(key, val) })
}

// Delete removes a record in its own transaction.
func (db *DB) Delete(key []byte) error {
	return db.auto(func(t *Txn) error { return t.Delete(key) })
}

// Scan runs a range scan in its own transaction.
func (db *DB) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	return db.auto(func(t *Txn) error { return t.Scan(lo, hi, fn) })
}

// Count counts records in [lo, hi].
func (db *DB) Count(lo, hi []byte) (int, error) {
	n := 0
	err := db.Scan(lo, hi, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// --- reorganization ---

// Reorganize runs the configured passes on-line and returns the
// reorganizer's counters.
func (db *DB) Reorganize(cfg ReorgConfig) (*metrics.Counters, error) {
	if cfg.Injector == nil {
		cfg.Injector = db.inj
	}
	r := core.New(db.tree, cfg)
	db.mu.Lock()
	db.reorg = r
	db.mu.Unlock()
	err := r.Run()
	db.mu.Lock()
	db.reorg = nil
	db.mu.Unlock()
	return r.Metrics(), err
}

// Reorganizer creates (without running) a reorganizer for fine-grained
// control — individual passes, crash hooks, metrics.
func (db *DB) Reorganizer(cfg ReorgConfig) *core.Reorganizer {
	if cfg.Injector == nil {
		cfg.Injector = db.inj
	}
	return core.New(db.tree, cfg)
}

// Tree exposes the underlying B+-tree (experiments and tools).
func (db *DB) Tree() *btree.Tree { return db.tree }

// --- durability and crash simulation ---

// Checkpoint flushes all dirty pages and logs a sharp checkpoint (the
// reorg table included when a reorganization is running). A quiescent
// checkpoint — no active transactions, no reorganization in flight —
// additionally applies WAL retention on the file backend: recovery
// never reads below such a checkpoint (no loser undo chain and no
// unit BEGIN can reach under it), so segments wholly below it are
// deleted.
func (db *DB) Checkpoint() error {
	if err := db.pager.FlushAll(); err != nil {
		return err
	}
	cp := wal.Checkpoint{
		ActiveTxns: db.txns.ActiveSnapshot(),
		NextTxnID:  db.txns.NextID(),
	}
	db.mu.Lock()
	reorging := db.reorg != nil
	if reorging {
		cp.Reorg = db.reorg.TableSnapshot()
		cp.Pass3 = db.reorg.Pass3Snapshot()
		cp.NextUnit = db.reorg.NextUnit()
	}
	db.mu.Unlock()
	lsn := db.log.Append(cp)
	if err := db.log.FlushTo(lsn); err != nil {
		return err
	}
	if !reorging && len(cp.ActiveTxns) == 0 {
		return db.log.TruncateBelow(lsn)
	}
	return nil
}

// Close shuts the database down cleanly: the log is forced, dirty
// pages are flushed, the buffer pool is verified quiescent — a pin
// leaked anywhere in the session surfaces here as an error — and every
// file handle is released. The handle-closing steps run even when an
// earlier step failed (a read-only directory must not leak
// descriptors); all failures are joined into the returned error.
func (db *DB) Close() error {
	flushErr := db.log.Flush()
	var pageErr error
	if flushErr == nil {
		pageErr = db.pager.FlushAll()
	}
	db.tree.Close() // drop the cached root pin before the pool's leak check
	return errors.Join(flushErr, pageErr, db.pager.Close(), db.log.Close())
}

// Crash simulates a system failure: all buffered pages and the
// unforced log tail are lost; only the disk and the durable log
// survive. Call Restart to recover.
func (db *DB) Crash() {
	db.log.Crash()
	db.pager.Crash()
}

// RestartInfo reports what recovery did.
type RestartInfo = recovery.Result

// Restart recovers the database after Crash: redo, loser rollback,
// forward recovery of an in-flight reorganization unit, and pass-3
// reconciliation. The DB's internals are replaced by the recovered
// instances.
func (db *DB) Restart() (*RestartInfo, error) {
	res, err := recovery.Restart(db.disk, db.log)
	if err != nil {
		return nil, err
	}
	db.pager = res.Pager
	// The disk and log carry the injector across the restart; the
	// rebuilt pager needs it re-installed.
	db.pager.SetInjector(db.inj)
	db.locks = res.Locks
	db.txns = res.Txns
	db.tree = res.Tree
	return res, nil
}

// --- observability ---

// GatherStats walks the quiescent tree for physical statistics.
func (db *DB) GatherStats() (TreeStats, error) { return db.tree.GatherStats() }

// Check verifies structural invariants (quiescent tree).
func (db *DB) Check() error { return db.tree.Check() }

// IOStats returns cumulative disk reads and writes.
func (db *DB) IOStats() (reads, writes int64) { return db.disk.Stats().Snapshot() }

// IOStats3 returns cumulative reads, writes and seeks in one call.
func (db *DB) IOStats3() (reads, writes, seeks int64) { return db.disk.Stats().Snapshot3() }

// Seeks returns the number of non-sequential disk reads (pass 2's
// contiguity benefit shows up here).
func (db *DB) Seeks() int64 { return db.disk.Stats().Seeks.Load() }

// LogBytes returns the total log volume appended.
func (db *DB) LogBytes() int64 { return db.log.BytesAppended() }

// LockStats exposes the lock manager's contention counters.
func (db *DB) LockStats() *lock.Stats { return db.locks.Stats() }

// PerfCounters snapshots the concurrent-hot-path counters: buffer-pool
// shard traffic (hits, misses, CLOCK eviction work, shard-mutex
// contention) and WAL group-commit effectiveness (forced writes
// performed vs. saved, batch volume). All sources are atomics, so the
// snapshot never contends with running transactions.
func (db *DB) PerfCounters() *metrics.Counters {
	c := metrics.New()
	ps := db.pager.Stats()
	c.Add(metrics.PoolShards, int64(db.pager.ShardCount()))
	c.Add(metrics.PoolHits, ps.Hits.Load())
	c.Add(metrics.PoolMisses, ps.Misses.Load())
	c.Add(metrics.PoolEvictions, ps.Evictions.Load())
	c.Add(metrics.PoolDirtyEvictions, ps.DirtyEvictions.Load())
	c.Add(metrics.PoolEvictionScans, ps.EvictionScans.Load())
	c.Add(metrics.PoolShardContention, ps.ShardContention.Load())
	c.Add(metrics.WALBytesAppended, db.log.BytesAppended())
	c.Add(metrics.WALForcedWrites, db.log.ForcedWrites())
	c.Add(metrics.WALForcesSaved, db.log.ForcesSaved())
	c.Add(metrics.WALGroupLeaders, db.log.GroupLeaders())
	c.Add(metrics.WALBytesForced, db.log.BytesForced())
	br, bw, fs := db.disk.Stats().Bytes()
	c.Add(metrics.DiskBytesRead, br)
	c.Add(metrics.DiskBytesWritten, bw)
	c.Add(metrics.DiskFsyncs, fs)
	c.Add(metrics.WALFsyncs, db.log.Fsyncs())
	sc, sd, sl := db.log.SegmentCounts()
	c.Add(metrics.WALSegsCreated, sc)
	c.Add(metrics.WALSegsDeleted, sd)
	c.Add(metrics.WALSegsLive, sl)
	return c
}

// PageSize returns the database page size.
func (db *DB) PageSize() int { return db.pager.PageSize() }
