package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestStressConcurrentOpsDuringReorganize hammers the sharded hot path
// from explicit Get/Insert/Delete/Scan goroutines while a full
// three-pass Reorganize runs, with a bounded buffer pool so CLOCK
// eviction, careful-write flushes and the loading protocol all fire
// concurrently. Its real assertions are the race detector (CI runs it
// with -race) plus tree invariants and key presence afterwards.
func TestStressConcurrentOpsDuringReorganize(t *testing.T) {
	db, err := Open(Options{PageSize: 1024, BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	if err := workload.Load(db, n, 24, "random", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Sparsify(db, n, 0.3); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	worker := func(id int, fn func(rng *rand.Rand) error) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(id)*101 + 5))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := fn(rng); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}

	// Readers: point gets over the loaded key space (missing keys are
	// expected after sparsification).
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go worker(i, func(rng *rand.Rand) error {
			_, err := db.Get(workload.Key(rng.Intn(n)))
			if err != nil && IsRetryable(err) {
				return err
			}
			return nil // ErrNotFound is fine
		})
	}
	// Writers: inserts of fresh keys, deletes of earlier fresh inserts.
	var freshMu sync.Mutex
	fresh := []int{}
	next := n + 1_000_000
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go worker(10+i, func(rng *rand.Rand) error {
			freshMu.Lock()
			next++
			id := next
			fresh = append(fresh, id)
			freshMu.Unlock()
			return db.Insert(workload.Key(id), workload.Value(id, 24))
		})
	}
	wg.Add(1)
	go worker(20, func(rng *rand.Rand) error {
		freshMu.Lock()
		var id int
		if len(fresh) > 4 {
			id, fresh = fresh[0], fresh[1:]
		}
		freshMu.Unlock()
		if id == 0 {
			time.Sleep(100 * time.Microsecond)
			return nil
		}
		err := db.Delete(workload.Key(id))
		if err != nil && IsRetryable(err) {
			return err
		}
		return nil // a not-yet-visible or reorganized-away key is fine
	})
	// Scanner: short range scans.
	wg.Add(1)
	go worker(30, func(rng *rand.Rand) error {
		lo := rng.Intn(n)
		count := 0
		return db.Scan(workload.Key(lo), workload.Key(lo+50),
			func(_, _ []byte) bool { count++; return count < 50 })
	})

	if _, err := db.Reorganize(DefaultReorgConfig()); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("reorganize under load: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // keep traffic running post-switch
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("worker: %v", err)
	default:
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	// Every fresh key not deleted must be present.
	freshMu.Lock()
	remaining := append([]int(nil), fresh...)
	freshMu.Unlock()
	for _, id := range remaining {
		if _, err := db.Get(workload.Key(id)); err != nil {
			t.Fatalf("fresh key %d lost: %v", id, err)
		}
	}
}

// TestGroupCommitCoalescesAndIsDurable commits K transactions
// concurrently and asserts (a) the log performed fewer than K forced
// writes — the group-commit coalescing guarantee — and (b) every
// committed key survives Crash()/Restart(), i.e. riding another
// leader's forced write still means durable.
func TestGroupCommitCoalescesAndIsDurable(t *testing.T) {
	db, err := Open(Options{PageSize: 1024, GroupCommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const K = 16
	forcesBefore := db.log.ForcedWrites()

	start := make(chan struct{})
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = db.Insert([]byte(fmt.Sprintf("gc-key-%02d", i)),
				[]byte(fmt.Sprintf("gc-val-%02d", i)))
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	forces := db.log.ForcedWrites() - forcesBefore
	if forces >= K {
		t.Errorf("group commit did not coalesce: %d forced writes for %d commits", forces, K)
	}
	if saved := db.log.ForcesSaved(); forces+saved < K {
		t.Errorf("accounting: %d forces + %d saved < %d commits", forces, saved, K)
	}
	t.Logf("%d commits -> %d forced writes (%d saved)", K, forces, db.log.ForcesSaved())

	// A commit that coalesced must still be durable.
	db.Crash()
	if _, err := db.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < K; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("gc-key-%02d", i)))
		if err != nil {
			t.Fatalf("key %d lost after crash: %v", i, err)
		}
		if want := fmt.Sprintf("gc-val-%02d", i); string(v) != want {
			t.Fatalf("key %d = %q, want %q", i, v, want)
		}
	}
}
